package sql

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sconrep/internal/storage"
)

// harness: an engine plus a helper to run statements in autocommit
// transactions.
type harness struct {
	t *testing.T
	e *storage.Engine
}

func newHarness(t *testing.T) *harness {
	return &harness{t: t, e: storage.NewEngine()}
}

func (h *harness) exec(src string, params ...any) *Result {
	h.t.Helper()
	tx := h.e.Begin()
	res, err := Exec(tx, h.e, src, params...)
	if err != nil {
		h.t.Fatalf("exec %q: %v", src, err)
	}
	if _, err := tx.CommitLocal(); err != nil {
		h.t.Fatalf("commit %q: %v", src, err)
	}
	return res
}

func (h *harness) execErr(src string, params ...any) error {
	h.t.Helper()
	tx := h.e.Begin()
	defer tx.Abort()
	_, err := Exec(tx, h.e, src, params...)
	if err == nil {
		h.t.Fatalf("exec %q: expected error", src)
	}
	return err
}

func (h *harness) query(src string, params ...any) *Result {
	h.t.Helper()
	tx := h.e.Begin()
	defer tx.Abort()
	res, err := Exec(tx, h.e, src, params...)
	if err != nil {
		h.t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func setupEmployees(t *testing.T) *harness {
	h := newHarness(t)
	h.exec(`CREATE TABLE emp (
		id INT PRIMARY KEY,
		name TEXT,
		dept TEXT,
		salary FLOAT,
		active BOOL
	)`)
	h.exec(`CREATE INDEX emp_dept ON emp (dept)`)
	h.exec(`CREATE TABLE dept (name TEXT PRIMARY KEY, city TEXT)`)
	h.exec(`INSERT INTO dept VALUES ('eng', 'SEA'), ('sales', 'NYC'), ('hr', 'LON')`)
	h.exec(`INSERT INTO emp VALUES
		(1, 'ann', 'eng', 120.0, TRUE),
		(2, 'bob', 'eng', 100.0, TRUE),
		(3, 'carol', 'sales', 90.0, TRUE),
		(4, 'dave', 'sales', 80.0, FALSE),
		(5, 'erin', 'hr', 70.0, TRUE)`)
	return h
}

func TestCreateInsertSelectStar(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT * FROM emp ORDER BY id`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	if len(res.Columns) != 5 || res.Columns[0] != "emp.id" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].(string) != "ann" || res.Rows[4][1].(string) != "erin" {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1`)
	if res.Columns[0] != "name" || res.Columns[1] != "double_pay" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].(float64) != 240.0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWherePredicates(t *testing.T) {
	h := setupEmployees(t)
	cases := []struct {
		where string
		want  int
	}{
		{`salary > 90`, 2},
		{`salary >= 90`, 3},
		{`salary < 80`, 1},
		{`salary <= 80`, 2},
		{`salary <> 90`, 4},
		{`dept = 'eng' AND salary > 100`, 1},
		{`dept = 'eng' OR dept = 'hr'`, 3},
		{`NOT active`, 1},
		{`salary BETWEEN 80 AND 100`, 3},
		{`name LIKE 'a%'`, 1},
		{`name LIKE '%o%'`, 2},
		{`name LIKE '_ob'`, 1},
		{`active AND (dept = 'sales' OR salary > 110)`, 2},
	}
	for _, c := range cases {
		res := h.query(`SELECT id FROM emp WHERE ` + c.where)
		if len(res.Rows) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(res.Rows), c.want)
		}
	}
}

func TestPlaceholders(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT name FROM emp WHERE dept = ? AND salary >= ?`, "eng", 110)
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Missing parameter is an error.
	tx := h.e.Begin()
	defer tx.Abort()
	if _, err := Exec(tx, h.e, `SELECT name FROM emp WHERE dept = ?`); err == nil {
		t.Fatal("missing param accepted")
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT name FROM emp ORDER BY salary DESC LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].(string) != "ann" || res.Rows[1][0].(string) != "bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = h.query(`SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].(string) != "carol" {
		t.Fatalf("offset rows = %v", res.Rows)
	}
	res = h.query(`SELECT name FROM emp ORDER BY dept ASC, salary DESC`)
	if res.Rows[0][0].(string) != "ann" || res.Rows[2][0].(string) != "erin" {
		t.Fatalf("multi-key order = %v", res.Rows)
	}
	res = h.query(`SELECT name FROM emp ORDER BY id LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
	res = h.query(`SELECT name FROM emp ORDER BY id OFFSET 10`)
	if len(res.Rows) != 0 {
		t.Fatalf("big OFFSET returned %d rows", len(res.Rows))
	}
}

func TestJoinPK(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT e.name, d.city FROM emp e JOIN dept d ON e.dept = d.name WHERE e.salary > 90 ORDER BY e.id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1].(string) != "SEA" || res.Rows[1][1].(string) != "SEA" {
		t.Fatalf("join produced %v", res.Rows)
	}
}

func TestJoinReversedOn(t *testing.T) {
	h := setupEmployees(t)
	// ON written with the new table on the left.
	res := h.query(`SELECT e.name, d.city FROM emp e JOIN dept d ON d.name = e.dept WHERE e.id = 5`)
	if len(res.Rows) != 1 || res.Rows[0][1].(string) != "LON" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	h := setupEmployees(t)
	h.exec(`CREATE TABLE badge (emp_id INT PRIMARY KEY, code TEXT)`)
	h.exec(`INSERT INTO badge VALUES (1, 'X1'), (3, 'X3')`)
	res := h.query(`SELECT e.name, d.city, b.code
		FROM badge b
		JOIN emp e ON b.emp_id = e.id
		JOIN dept d ON e.dept = d.name
		ORDER BY b.emp_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][2].(string) != "X1" || res.Rows[1][1].(string) != "NYC" {
		t.Fatalf("3-way join = %v", res.Rows)
	}
}

func TestHashJoinFallback(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE a (id INT PRIMARY KEY, v INT)`)
	h.exec(`CREATE TABLE b (id INT PRIMARY KEY, v INT)`)
	h.exec(`INSERT INTO a VALUES (1, 10), (2, 20), (3, 10)`)
	h.exec(`INSERT INTO b VALUES (7, 10), (8, 30), (9, 10)`)
	// Join on non-key, non-indexed column v: hash join path.
	res := h.query(`SELECT a.id, b.id FROM a JOIN b ON a.v = b.v ORDER BY a.id, b.id`)
	if len(res.Rows) != 4 { // (1,7),(1,9),(3,7),(3,9)
		t.Fatalf("hash join rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT COUNT(*), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp`)
	r := res.Rows[0]
	if r[0].(int64) != 5 || r[1].(float64) != 460.0 || r[2].(float64) != 92.0 ||
		r[3].(float64) != 70.0 || r[4].(float64) != 120.0 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestGroupBy(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT dept, COUNT(*) AS n, SUM(salary) AS total
		FROM emp GROUP BY dept ORDER BY total DESC`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0].(string) != "eng" || res.Rows[0][1].(int64) != 2 || res.Rows[0][2].(float64) != 220.0 {
		t.Fatalf("top group = %v", res.Rows[0])
	}
	if res.Rows[2][0].(string) != "hr" {
		t.Fatalf("bottom group = %v", res.Rows[2])
	}
}

func TestGroupByWithWhereAndLimit(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT dept, COUNT(*) FROM emp WHERE active GROUP BY dept ORDER BY COUNT(*) DESC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].(string) != "eng" || res.Rows[0][1].(int64) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT COUNT(DISTINCT dept) FROM emp`)
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("count distinct = %v", res.Rows[0][0])
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp WHERE salary > 1000`)
	r := res.Rows[0]
	if r[0].(int64) != 0 || r[1] != nil || r[2] != nil {
		t.Fatalf("empty aggregates = %v", r)
	}
	// GROUP BY over empty input yields zero groups.
	res = h.query(`SELECT dept, COUNT(*) FROM emp WHERE salary > 1000 GROUP BY dept`)
	if len(res.Rows) != 0 {
		t.Fatalf("empty group-by yielded %v", res.Rows)
	}
}

func TestAggregateWithArithmetic(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT SUM(salary) / COUNT(*) FROM emp`)
	if res.Rows[0][0].(float64) != 92.0 {
		t.Fatalf("computed avg = %v", res.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	h := setupEmployees(t)
	res := h.exec(`UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2", res.Affected)
	}
	q := h.query(`SELECT salary FROM emp WHERE id = 1`)
	if q.Rows[0][0].(float64) != 130.0 {
		t.Fatalf("salary = %v", q.Rows[0][0])
	}
}

func TestUpdateByPK(t *testing.T) {
	h := setupEmployees(t)
	res := h.exec(`UPDATE emp SET name = ?, active = FALSE WHERE id = ?`, "anna", 1)
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	q := h.query(`SELECT name, active FROM emp WHERE id = 1`)
	if q.Rows[0][0].(string) != "anna" || q.Rows[0][1].(bool) != false {
		t.Fatalf("row = %v", q.Rows[0])
	}
}

func TestDelete(t *testing.T) {
	h := setupEmployees(t)
	res := h.exec(`DELETE FROM emp WHERE active = FALSE`)
	if res.Affected != 1 {
		t.Fatalf("affected = %d, want 1", res.Affected)
	}
	q := h.query(`SELECT COUNT(*) FROM emp`)
	if q.Rows[0][0].(int64) != 4 {
		t.Fatalf("count = %v", q.Rows[0][0])
	}
}

func TestInsertPartialColumns(t *testing.T) {
	h := setupEmployees(t)
	h.exec(`INSERT INTO emp (id, name) VALUES (10, 'zoe')`)
	q := h.query(`SELECT dept, salary FROM emp WHERE id = 10`)
	if q.Rows[0][0] != nil || q.Rows[0][1] != nil {
		t.Fatalf("defaults = %v", q.Rows[0])
	}
}

func TestNullSemantics(t *testing.T) {
	h := setupEmployees(t)
	h.exec(`INSERT INTO emp (id, name) VALUES (10, 'zoe')`)
	// NULL comparisons are UNKNOWN: the row must not match either way.
	if res := h.query(`SELECT id FROM emp WHERE salary > 0`); len(res.Rows) != 5 {
		t.Fatalf("salary > 0 matched %d", len(res.Rows))
	}
	if res := h.query(`SELECT id FROM emp WHERE salary <= 0`); len(res.Rows) != 0 {
		t.Fatalf("salary <= 0 matched %d", len(res.Rows))
	}
	if res := h.query(`SELECT id FROM emp WHERE salary IS NULL`); len(res.Rows) != 1 {
		t.Fatalf("IS NULL matched %d", len(res.Rows))
	}
	if res := h.query(`SELECT id FROM emp WHERE salary IS NOT NULL`); len(res.Rows) != 5 {
		t.Fatalf("IS NOT NULL matched %d", len(res.Rows))
	}
	// Aggregates skip NULLs; COUNT(*) does not.
	res := h.query(`SELECT COUNT(*), COUNT(salary) FROM emp`)
	if res.Rows[0][0].(int64) != 6 || res.Rows[0][1].(int64) != 5 {
		t.Fatalf("counts = %v", res.Rows[0])
	}
}

func TestDuplicateKeyError(t *testing.T) {
	h := setupEmployees(t)
	err := h.execErr(`INSERT INTO emp (id, name) VALUES (1, 'dup')`)
	if !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`INSERT INTO emp`,
		`UPDATE emp WHERE id = 1`,
		`DELETE emp`,
		`CREATE TABLE t`,
		`CREATE TABLE t (a INT)`, // no primary key
		`SELECT * FROM emp; SELECT * FROM emp`,
		`SELECT * FROM emp LIMIT x`,
		`FROBNICATE`,
		`SELECT 'unterminated FROM emp`,
		`SELECT a ! b FROM emp`,
	}
	for _, src := range bad {
		if stmt, err := Parse(src); err == nil {
			if ct, ok := stmt.(*CreateTable); ok {
				// CREATE TABLE without key parses; the engine rejects it.
				e := storage.NewEngine()
				if err := e.CreateTable(ct.Schema); err == nil {
					t.Errorf("parse+create %q succeeded", src)
				}
				continue
			}
			t.Errorf("Parse(%q) succeeded: %#v", src, stmt)
		}
	}
}

func TestUnknownColumnAndTableErrors(t *testing.T) {
	h := setupEmployees(t)
	h.execErr(`SELECT nope FROM emp`)
	h.execErr(`SELECT * FROM nope`)
	h.execErr(`UPDATE emp SET nope = 1`)
	h.execErr(`INSERT INTO emp (nope) VALUES (1)`)
	err := h.execErr(`SELECT id FROM emp JOIN dept ON emp.dept = dept.nosuch`)
	if !strings.Contains(err.Error(), "nosuch") && !strings.Contains(err.Error(), "orient") {
		t.Fatalf("join err = %v", err)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE x (id INT PRIMARY KEY, v INT)`)
	h.exec(`CREATE TABLE y (id INT PRIMARY KEY, v INT)`)
	h.exec(`INSERT INTO x VALUES (1, 1)`)
	h.exec(`INSERT INTO y VALUES (1, 2)`)
	// Unqualified v is ambiguous across x and y.
	h.execErr(`SELECT v FROM x JOIN y ON x.id = y.id`)
	res := h.query(`SELECT x.v, y.v FROM x JOIN y ON x.id = y.id`)
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(int64) != 2 {
		t.Fatalf("qualified cols = %v", res.Rows[0])
	}
}

func TestPlannerPaths(t *testing.T) {
	h := setupEmployees(t)
	cases := []struct {
		src  string
		want string
	}{
		{`SELECT * FROM emp WHERE id = 3`, "pk-point"},
		{`SELECT * FROM emp WHERE id = ?`, "pk-point"},
		{`SELECT * FROM emp WHERE id > 2`, "pk-range"},
		{`SELECT * FROM emp WHERE id BETWEEN 2 AND 4`, "pk-range"},
		{`SELECT * FROM emp WHERE dept = 'eng'`, "index-eq"},
		{`SELECT * FROM emp WHERE salary > 100`, "full-scan"},
		{`SELECT * FROM emp`, "full-scan"},
		{`SELECT * FROM emp WHERE id = 3 AND salary > 1`, "pk-point"},
		{`SELECT * FROM emp WHERE 3 = id`, "pk-point"},
		{`SELECT * FROM emp WHERE 100 < id`, "pk-range"},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Explain(h.e, stmt, []any{int64(1)})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(got, c.want) {
			t.Errorf("%s: plan = %q, want %s", c.src, got, c.want)
		}
	}
}

// TestPlannerPathsAgree verifies that queries return identical results
// regardless of access path, by comparing indexed against forced-full
// scans on random data.
func TestPlannerPathsAgree(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE n (id INT PRIMARY KEY, grp INT, v INT)`)
	h.exec(`CREATE INDEX n_grp ON n (grp)`)
	rng := rand.New(rand.NewSource(5))
	tx := h.e.Begin()
	for i := 0; i < 500; i++ {
		if _, err := Exec(tx, h.e, `INSERT INTO n VALUES (?, ?, ?)`, i, rng.Intn(10), rng.Intn(100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.CommitLocal(); err != nil {
		t.Fatal(err)
	}

	for g := 0; g < 10; g++ {
		indexed := h.query(`SELECT id FROM n WHERE grp = ? ORDER BY id`, g)
		// grp+0 defeats sargability, forcing a full scan.
		full := h.query(`SELECT id FROM n WHERE grp + 0 = ? ORDER BY id`, g)
		if len(indexed.Rows) != len(full.Rows) {
			t.Fatalf("grp=%d: indexed %d rows, full %d rows", g, len(indexed.Rows), len(full.Rows))
		}
		for i := range indexed.Rows {
			if indexed.Rows[i][0] != full.Rows[i][0] {
				t.Fatalf("grp=%d row %d: %v vs %v", g, i, indexed.Rows[i], full.Rows[i])
			}
		}
	}
	for _, probe := range []int{0, 100, 250, 499, 500} {
		point := h.query(`SELECT v FROM n WHERE id = ?`, probe)
		full := h.query(`SELECT v FROM n WHERE id + 0 = ?`, probe)
		if len(point.Rows) != len(full.Rows) {
			t.Fatalf("id=%d: point %d rows, full %d rows", probe, len(point.Rows), len(full.Rows))
		}
	}
}

func TestTableSetExtraction(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`SELECT * FROM emp`, "emp"},
		{`SELECT * FROM emp e JOIN dept d ON e.dept = d.name`, "dept,emp"},
		{`INSERT INTO emp (id) VALUES (1)`, "emp"},
		{`UPDATE emp SET salary = 1`, "emp"},
		{`DELETE FROM dept WHERE name = 'x'`, "dept"},
	}
	for _, c := range cases {
		stmt, err := Parse(c.src)
		if err != nil {
			t.Fatal(err)
		}
		got := strings.Join(Tables(stmt), ",")
		if got != c.want {
			t.Errorf("Tables(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestPrepared(t *testing.T) {
	h := setupEmployees(t)
	p, err := Prepare(`SELECT name FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ReadOnly || len(p.TableSet) != 1 || p.TableSet[0] != "emp" {
		t.Fatalf("prepared meta = %+v", p)
	}
	tx := h.e.Begin()
	defer tx.Abort()
	for i := int64(1); i <= 3; i++ {
		res, err := p.Exec(tx, h.e, i)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("exec(%d) = %v, %v", i, res, err)
		}
	}
	upd, _ := Prepare(`UPDATE emp SET salary = ? WHERE id = ?`)
	if upd.ReadOnly {
		t.Fatal("UPDATE marked read-only")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// TestQuickLikeVsNaive compares the backtracking matcher against a
// recursive reference implementation.
func TestQuickLikeVsNaive(t *testing.T) {
	var naive func(s, p string) bool
	naive = func(s, p string) bool {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for i := 0; i <= len(s); i++ {
				if naive(s[i:], p[1:]) {
					return true
				}
			}
			return false
		case '_':
			return s != "" && naive(s[1:], p[1:])
		default:
			return s != "" && s[0] == p[0] && naive(s[1:], p[1:])
		}
	}
	alphabet := []byte("ab%_")
	mk := func(raw []byte, n int) string {
		var b strings.Builder
		for i := 0; i < len(raw) && i < n; i++ {
			b.WriteByte(alphabet[int(raw[i])%len(alphabet)])
		}
		return b.String()
	}
	f := func(sRaw, pRaw []byte) bool {
		s := strings.ReplaceAll(strings.ReplaceAll(mk(sRaw, 8), "%", "a"), "_", "b")
		p := mk(pRaw, 6)
		return likeMatch(s, p) == naive(s, p)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolationThroughSQL(t *testing.T) {
	h := setupEmployees(t)
	reader := h.e.Begin()
	h.exec(`UPDATE emp SET salary = 999 WHERE id = 1`)
	res, err := Exec(reader, h.e, `SELECT salary FROM emp WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 120.0 {
		t.Fatalf("snapshot read = %v, want 120", res.Rows[0][0])
	}
}

func TestWriteSetFromSQL(t *testing.T) {
	h := setupEmployees(t)
	tx := h.e.Begin()
	if _, err := Exec(tx, h.e, `UPDATE emp SET salary = 1 WHERE dept = 'eng'`); err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(tx, h.e, `DELETE FROM emp WHERE id = 5`); err != nil {
		t.Fatal(err)
	}
	ws := tx.WriteSet()
	if ws.Len() != 3 {
		t.Fatalf("writeset = %v", ws)
	}
	tables := ws.Tables()
	if len(tables) != 1 || tables[0] != "emp" {
		t.Fatalf("tables = %v", tables)
	}
	tx.Abort()
}

func TestArithmeticEdgeCases(t *testing.T) {
	h := setupEmployees(t)
	res := h.query(`SELECT 7 / 2, 7.0 / 2, 3 * 4 + 1, 10 - 2 - 3 FROM emp WHERE id = 1`)
	r := res.Rows[0]
	if r[0].(int64) != 3 {
		t.Errorf("int div = %v", r[0])
	}
	if r[1].(float64) != 3.5 {
		t.Errorf("float div = %v", r[1])
	}
	if r[2].(int64) != 13 {
		t.Errorf("precedence = %v", r[2])
	}
	if r[3].(int64) != 5 {
		t.Errorf("left assoc = %v", r[3])
	}
	tx := h.e.Begin()
	defer tx.Abort()
	if _, err := Exec(tx, h.e, `SELECT 1 / 0 FROM emp WHERE id = 1`); err == nil {
		t.Error("division by zero succeeded")
	}
}

func TestNegativeNumbers(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	h.exec(`INSERT INTO t VALUES (-5, -10), (1, 20)`)
	res := h.query(`SELECT v FROM t WHERE id = -5`)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != -10 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = h.query(`SELECT id FROM t ORDER BY id`)
	if res.Rows[0][0].(int64) != -5 {
		t.Fatalf("negative key sorts after positive: %v", res.Rows)
	}
}

func TestCompositePrimaryKey(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE ol (order_id INT, line INT, item TEXT, PRIMARY KEY (order_id, line))`)
	h.exec(`INSERT INTO ol VALUES (1, 1, 'a'), (1, 2, 'b'), (2, 1, 'c')`)
	res := h.query(`SELECT item FROM ol WHERE order_id = 1 ORDER BY line`)
	if len(res.Rows) != 2 || res.Rows[0][0].(string) != "a" {
		t.Fatalf("prefix scan = %v", res.Rows)
	}
	stmt, _ := Parse(`SELECT item FROM ol WHERE order_id = 1 AND line = 2`)
	plan, _ := Explain(h.e, stmt, nil)
	if !strings.HasPrefix(plan, "pk-point") {
		t.Fatalf("full composite key plan = %q", plan)
	}
	stmt, _ = Parse(`SELECT item FROM ol WHERE order_id = 1`)
	plan, _ = Explain(h.e, stmt, nil)
	if !strings.HasPrefix(plan, "pk-range") {
		t.Fatalf("prefix plan = %q", plan)
	}
	// Duplicate composite key must be rejected.
	err := h.execErr(`INSERT INTO ol VALUES (1, 2, 'dup')`)
	if !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestVarcharLengthIgnored(t *testing.T) {
	h := newHarness(t)
	h.exec(`CREATE TABLE t (id INT PRIMARY KEY, s VARCHAR(100))`)
	h.exec(`INSERT INTO t VALUES (1, 'hello')`)
	res := h.query(`SELECT s FROM t WHERE id = 1`)
	if res.Rows[0][0].(string) != "hello" {
		t.Fatal("varchar round trip failed")
	}
}
