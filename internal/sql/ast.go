package sql

import "sconrep/internal/storage"

// Expr is a SQL expression node.
type Expr interface{ isExpr() }

// Lit is a literal value: int64, float64, string, bool, or nil.
type Lit struct{ Val any }

// Col references a column, optionally qualified by a table name or
// alias ("t.col").
type Col struct {
	Table string // "" when unqualified
	Name  string
}

// Placeholder is a positional ? parameter (0-based).
type Placeholder struct{ Index int }

// BinOp applies a binary operator.
type BinOp struct {
	Op   string // "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "AND", "OR", "LIKE"
	L, R Expr
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// IsNull tests an expression against NULL.
type IsNull struct {
	E      Expr
	Negate bool // IS NOT NULL
}

// Between is "x BETWEEN lo AND hi" (inclusive).
type Between struct {
	E      Expr
	Lo, Hi Expr
}

// Agg is an aggregate function application.
type Agg struct {
	Func     string // "COUNT", "SUM", "AVG", "MIN", "MAX"
	Star     bool   // COUNT(*)
	Distinct bool
	Arg      Expr
}

func (*Lit) isExpr()         {}
func (*Col) isExpr()         {}
func (*Placeholder) isExpr() {}
func (*BinOp) isExpr()       {}
func (*Not) isExpr()         {}
func (*IsNull) isExpr()      {}
func (*Between) isExpr()     {}
func (*Agg) isExpr()         {}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // bare *
}

// TableRef is one table in the FROM clause.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Join is one INNER JOIN clause: JOIN Right ON LeftCol = RightCol.
type Join struct {
	Right TableRef
	On    *BinOp // must be Col = Col after parsing
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Items   []SelectItem
	From    TableRef
	Joins   []Join
	Where   Expr // nil when absent
	GroupBy []Expr
	OrderBy []OrderKey
	Limit   int // -1 when absent
	Offset  int // 0 when absent
}

// Insert is an INSERT statement. Each row in Rows has one expression
// per column in Columns (or per table column when Columns is empty).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause assigns an expression to a column.
type SetClause struct {
	Column string
	Expr   Expr
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Expr
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Schema *storage.Schema
}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	Table string
	Def   storage.IndexDef
}

// Stmt is any parsed statement.
type Stmt interface{ isStmt() }

func (*Select) isStmt()      {}
func (*Insert) isStmt()      {}
func (*Update) isStmt()      {}
func (*Delete) isStmt()      {}
func (*CreateTable) isStmt() {}
func (*CreateIndex) isStmt() {}
