package sql

import (
	"fmt"
	"strings"

	"sconrep/internal/storage"
)

// env is the runtime environment for expression evaluation: a joined
// row with a name→offset resolver, plus statement parameters.
type env struct {
	cols   map[string]int // "alias.col" always; bare "col" when unambiguous
	row    []any
	params []any
}

// newEnvResolver builds the column resolver for a list of (alias,
// schema) pairs laid out consecutively in the joined row.
func newEnvResolver(tables []boundTable) map[string]int {
	cols := make(map[string]int)
	ambiguous := make(map[string]bool)
	off := 0
	for _, bt := range tables {
		for i, c := range bt.schema.Columns {
			qualified := bt.alias + "." + c.Name
			cols[qualified] = off + i
			if _, dup := cols[c.Name]; dup {
				ambiguous[c.Name] = true
			} else if !ambiguous[c.Name] {
				cols[c.Name] = off + i
			}
		}
		off += bt.schema.NumColumns()
	}
	for name := range ambiguous {
		delete(cols, name)
	}
	return cols
}

type boundTable struct {
	alias  string
	schema *storage.Schema
}

// errUnknown distinguishes SQL three-valued UNKNOWN from errors; eval
// returns (nil, nil) for NULL results, and predicates treat them as
// not-true.

func (ev *env) lookup(c *Col) (int, error) {
	var key string
	if c.Table != "" {
		key = c.Table + "." + c.Name
	} else {
		key = c.Name
	}
	if off, ok := ev.cols[key]; ok {
		return off, nil
	}
	return 0, fmt.Errorf("sql: unknown column %s", key)
}

// eval evaluates a non-aggregate expression. NULL propagates as nil.
func eval(e Expr, ev *env) (any, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *Col:
		off, err := ev.lookup(x)
		if err != nil {
			return nil, err
		}
		return ev.row[off], nil
	case *Placeholder:
		if x.Index >= len(ev.params) {
			return nil, fmt.Errorf("sql: missing parameter %d (%d bound)", x.Index+1, len(ev.params))
		}
		return normalizeParam(ev.params[x.Index])
	case *Not:
		v, err := eval(x.E, ev)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("sql: NOT applied to non-boolean %T", v)
		}
		return !b, nil
	case *IsNull:
		v, err := eval(x.E, ev)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Negate, nil
	case *Between:
		v, err := eval(x.E, ev)
		if err != nil {
			return nil, err
		}
		lo, err := eval(x.Lo, ev)
		if err != nil {
			return nil, err
		}
		hi, err := eval(x.Hi, ev)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		return storage.CompareValues(v, lo) >= 0 && storage.CompareValues(v, hi) <= 0, nil
	case *BinOp:
		return evalBinOp(x, ev)
	case *Agg:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Func)
	}
	return nil, fmt.Errorf("sql: cannot evaluate %T", e)
}

func evalBinOp(x *BinOp, ev *env) (any, error) {
	// AND/OR implement three-valued logic with short circuits.
	switch x.Op {
	case "AND", "OR":
		l, err := eval(x.L, ev)
		if err != nil {
			return nil, err
		}
		lb, lNull := toBool3(l)
		if x.Op == "AND" && !lNull && !lb {
			return false, nil
		}
		if x.Op == "OR" && !lNull && lb {
			return true, nil
		}
		r, err := eval(x.R, ev)
		if err != nil {
			return nil, err
		}
		rb, rNull := toBool3(r)
		switch x.Op {
		case "AND":
			if !rNull && !rb {
				return false, nil
			}
			if lNull || rNull {
				return nil, nil
			}
			return lb && rb, nil
		default: // OR
			if !rNull && rb {
				return true, nil
			}
			if lNull || rNull {
				return nil, nil
			}
			return lb || rb, nil
		}
	}

	l, err := eval(x.L, ev)
	if err != nil {
		return nil, err
	}
	r, err := eval(x.R, ev)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l == nil || r == nil {
			return nil, nil
		}
		cmp, err := safeCompare(l, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return cmp == 0, nil
		case "<>":
			return cmp != 0, nil
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "LIKE":
		if l == nil || r == nil {
			return nil, nil
		}
		ls, ok1 := l.(string)
		rs, ok2 := r.(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sql: LIKE requires strings, got %T and %T", l, r)
		}
		return likeMatch(ls, rs), nil
	case "+", "-", "*", "/":
		if l == nil || r == nil {
			return nil, nil
		}
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("sql: unknown operator %q", x.Op)
}

// toBool3 maps a value to (bool, isNull) for three-valued logic.
// Non-boolean non-nil values are treated as an error upstream; here we
// conservatively map them to NULL.
func toBool3(v any) (bool, bool) {
	if v == nil {
		return false, true
	}
	if b, ok := v.(bool); ok {
		return b, false
	}
	return false, true
}

func safeCompare(a, b any) (cmp int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sql: cannot compare %T with %T", a, b)
		}
	}()
	return storage.CompareValues(a, b), nil
}

func arith(op string, l, r any) (any, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		default:
			if ri == 0 {
				return nil, fmt.Errorf("sql: division by zero")
			}
			return li / ri, nil
		}
	}
	lf, err := toFloat(l)
	if err != nil {
		return nil, err
	}
	rf, err := toFloat(r)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	default:
		if rf == 0 {
			return nil, fmt.Errorf("sql: division by zero")
		}
		return lf / rf, nil
	}
}

func toFloat(v any) (float64, error) {
	switch t := v.(type) {
	case int64:
		return float64(t), nil
	case float64:
		return t, nil
	default:
		return 0, fmt.Errorf("sql: %T is not numeric", v)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// character) wildcards, matching bytewise.
func likeMatch(s, pattern string) bool {
	// Dynamic-programming two-pointer match with backtracking on the
	// last %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// normalizeParam widens Go integer parameter types to int64 and
// validates the value is a supported SQL type.
func normalizeParam(p any) (any, error) {
	switch v := p.(type) {
	case nil, int64, float64, string, bool:
		return p, nil
	case int:
		return int64(v), nil
	case int32:
		return int64(v), nil
	case uint32:
		return int64(v), nil
	case float32:
		return float64(v), nil
	default:
		return nil, fmt.Errorf("sql: unsupported parameter type %T", p)
	}
}

// exprString renders an expression for column headers.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *Lit:
		return storage.FormatValue(x.Val)
	case *Col:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *Placeholder:
		return "?"
	case *Not:
		return "NOT " + exprString(x.E)
	case *IsNull:
		if x.Negate {
			return exprString(x.E) + " IS NOT NULL"
		}
		return exprString(x.E) + " IS NULL"
	case *Between:
		return fmt.Sprintf("%s BETWEEN %s AND %s", exprString(x.E), exprString(x.Lo), exprString(x.Hi))
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", exprString(x.L), x.Op, exprString(x.R))
	case *Agg:
		if x.Star {
			return "COUNT(*)"
		}
		d := ""
		if x.Distinct {
			d = "DISTINCT "
		}
		return fmt.Sprintf("%s(%s%s)", strings.ToUpper(x.Func), d, exprString(x.Arg))
	}
	return "?expr?"
}
