// Package sql implements the SQL subset the replicated system executes:
// CREATE TABLE / CREATE INDEX, SELECT with inner joins, WHERE
// conjunctions, GROUP BY with aggregates, ORDER BY and LIMIT, plus
// INSERT, UPDATE, and DELETE — all with ? placeholders so workloads run
// as prepared statements.
//
// Prepared statements matter beyond convenience: the fine-grained
// consistency technique (§III-C of the paper) statically extracts the
// *table-set* of each prepared transaction, which is exactly what this
// package's parser exposes.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPlaceholder
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased, identifiers lower-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "ON": true, "JOIN": true, "INNER": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "AS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"INT": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true, "TEXT": true,
	"VARCHAR": true, "BOOL": true, "BOOLEAN": true, "LIKE": true, "IS": true,
	"DISTINCT": true, "BETWEEN": true, "OFFSET": true,
}

// lexer splits a statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error with position context for any
// byte it cannot interpret.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		c := l.src[l.pos]
		start := l.pos
		switch {
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				l.emit(tokKeyword, upper, start)
			} else {
				l.emit(tokIdent, strings.ToLower(word), start)
			}
		case c >= '0' && c <= '9':
			kind := tokInt
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			if l.pos < len(l.src) && l.src[l.pos] == '.' {
				kind = tokFloat
				l.pos++
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
			if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				kind = tokFloat
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
			l.emit(kind, l.src[start:l.pos], start)
		case c == '\'':
			l.pos++
			var b strings.Builder
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '\'' {
					// '' escapes a quote.
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					closed = true
					break
				}
				b.WriteByte(l.src[l.pos])
				l.pos++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at position %d", start)
			}
			l.emit(tokString, b.String(), start)
		case c == '?':
			l.pos++
			l.emit(tokPlaceholder, "?", start)
		case strings.ContainsRune("(),.*=+-/;", rune(c)):
			l.pos++
			l.emit(tokSymbol, string(c), start)
		case c == '<':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				l.pos++
			}
			l.emit(tokSymbol, l.src[start:l.pos], start)
		case c == '>':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.emit(tokSymbol, l.src[start:l.pos], start)
		case c == '!':
			l.pos++
			if l.pos >= len(l.src) || l.src[l.pos] != '=' {
				return nil, fmt.Errorf("sql: unexpected '!' at position %d", start)
			}
			l.pos++
			l.emit(tokSymbol, "!=", start)
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, l.pos)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) emit(kind tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
