package sql

import (
	"fmt"

	"sconrep/internal/storage"
)

// This file chooses access paths for base-table scans. The planner is
// deliberately simple: it recognizes sargable conjuncts of the form
// <column> <op> <constant> and picks, in order of preference,
//
//  1. a primary-key point lookup (equality on every key column),
//  2. a primary-key range scan (equality/range on a key prefix),
//  3. a secondary-index equality lookup,
//  4. a full scan.
//
// Bounds are conservative (they may admit extra rows); the executor
// always re-applies the full predicate, so the planner affects cost,
// never correctness.

// accessPath describes how to fetch the candidate rows of one table.
type accessPath struct {
	kind      pathKind
	pointKey  string // kindPoint
	lo, hi    string // kindRange; "" = unbounded
	indexName string // kindIndexEq
	indexVal  any    // kindIndexEq
}

type pathKind uint8

const (
	kindFull pathKind = iota
	kindPoint
	kindRange
	kindIndexEq
)

func (k pathKind) String() string {
	switch k {
	case kindFull:
		return "full-scan"
	case kindPoint:
		return "pk-point"
	case kindRange:
		return "pk-range"
	case kindIndexEq:
		return "index-eq"
	default:
		return "?"
	}
}

// conjunct is a sargable condition extracted from the WHERE clause.
type conjunct struct {
	col string // unqualified column name on the target table
	op  string // "=", "<", "<=", ">", ">="
	val any    // evaluated constant
}

// splitConjuncts flattens a WHERE tree into AND-ed conjuncts.
func splitConjuncts(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

// constValue evaluates an expression that must not reference columns:
// literals, placeholders, and arithmetic over them.
func constValue(e Expr, params []any) (any, bool) {
	switch e.(type) {
	case *Col, *Agg:
		return nil, false
	}
	// Reject anything containing a column reference.
	if refsColumns(e) {
		return nil, false
	}
	v, err := eval(e, &env{params: params})
	if err != nil {
		return nil, false
	}
	return v, true
}

func refsColumns(e Expr) bool {
	switch x := e.(type) {
	case *Col:
		return true
	case *Lit, *Placeholder, nil:
		return false
	case *Not:
		return refsColumns(x.E)
	case *IsNull:
		return refsColumns(x.E)
	case *Between:
		return refsColumns(x.E) || refsColumns(x.Lo) || refsColumns(x.Hi)
	case *BinOp:
		return refsColumns(x.L) || refsColumns(x.R)
	case *Agg:
		return true
	}
	return true
}

// sargable extracts a conjunct usable for index selection on the table
// bound to alias.
func sargable(e Expr, alias string, schema *storage.Schema, params []any) (conjunct, bool) {
	b, ok := e.(*BinOp)
	if ok {
		col, colOK := b.L.(*Col)
		val, valOK := constValue(b.R, params)
		op := b.Op
		if !colOK {
			// constant <op> column: flip.
			col, colOK = b.R.(*Col)
			val, valOK = constValue(b.L, params)
			op = flipOp(op)
		}
		if !colOK || !valOK || val == nil {
			return conjunct{}, false
		}
		if col.Table != "" && col.Table != alias {
			return conjunct{}, false
		}
		if schema.ColIndex(col.Name) < 0 {
			return conjunct{}, false
		}
		switch op {
		case "=", "<", "<=", ">", ">=":
			return conjunct{col: col.Name, op: op, val: val}, true
		}
		return conjunct{}, false
	}
	if bt, ok := e.(*Between); ok {
		// BETWEEN contributes its lower bound; the upper bound is
		// re-checked by the residual filter. (Only the lo conjunct is
		// returned; callers treat BETWEEN as ">= lo".)
		col, colOK := bt.E.(*Col)
		lo, loOK := constValue(bt.Lo, params)
		if colOK && loOK && lo != nil && (col.Table == "" || col.Table == alias) && schema.ColIndex(col.Name) >= 0 {
			return conjunct{col: col.Name, op: ">=", val: lo}, true
		}
	}
	return conjunct{}, false
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// choosePath picks the access path for one table given the WHERE
// conjuncts that mention it.
func choosePath(schema *storage.Schema, alias string, where Expr, params []any) accessPath {
	var conjs []conjunct
	if where != nil {
		for _, e := range splitConjuncts(where, nil) {
			if c, ok := sargable(e, alias, schema, params); ok {
				conjs = append(conjs, c)
			}
		}
	}
	if len(conjs) == 0 {
		return accessPath{kind: kindFull}
	}

	// 1. Full-PK equality → point lookup.
	eq := map[string]any{}
	for _, c := range conjs {
		if c.op == "=" {
			eq[c.col] = c.val
		}
	}
	if len(eq) > 0 {
		vals := make([]any, 0, len(schema.Key))
		all := true
		for _, kc := range schema.Key {
			v, ok := eq[kc]
			if !ok {
				all = false
				break
			}
			cv, err := coerceValue(v, schema.Columns[schema.ColIndex(kc)].Type)
			if err != nil {
				all = false
				break
			}
			vals = append(vals, cv)
		}
		if all {
			return accessPath{kind: kindPoint, pointKey: storage.EncodeKey(vals...)}
		}
	}

	// 2. PK prefix: equality on leading key columns, optional range on
	// the next one.
	var prefix []any
	for _, kc := range schema.Key {
		v, ok := eq[kc]
		if !ok {
			break
		}
		cv, err := coerceValue(v, schema.Columns[schema.ColIndex(kc)].Type)
		if err != nil {
			break
		}
		prefix = append(prefix, cv)
	}
	var lo, hi string
	if len(prefix) > 0 {
		base := storage.EncodeKey(prefix...)
		lo, hi = base, base+"\xff"
	}
	if len(prefix) < len(schema.Key) {
		nextCol := schema.Key[len(prefix)]
		nextType := schema.Columns[schema.ColIndex(nextCol)].Type
		for _, c := range conjs {
			if c.col != nextCol || c.op == "=" {
				continue
			}
			cv, err := coerceValue(c.val, nextType)
			if err != nil {
				continue
			}
			bound := storage.EncodeKey(append(append([]any{}, prefix...), cv)...)
			switch c.op {
			case ">", ">=":
				if bound > lo {
					lo = bound
				}
			case "<", "<=":
				b := bound + "\xff"
				if hi == "" || b < hi {
					hi = b
				}
			}
		}
	}
	if lo != "" || hi != "" {
		return accessPath{kind: kindRange, lo: lo, hi: hi}
	}

	// 3. Secondary-index equality.
	for _, def := range schema.Indexes {
		if v, ok := eq[def.Column]; ok {
			cv, err := coerceValue(v, schema.Columns[schema.ColIndex(def.Column)].Type)
			if err == nil {
				return accessPath{kind: kindIndexEq, indexName: def.Name, indexVal: cv}
			}
		}
	}
	return accessPath{kind: kindFull}
}

// fetch runs the access path against a transaction.
func fetch(tx *storage.Txn, table string, path accessPath) ([]storage.KV, error) {
	switch path.kind {
	case kindPoint:
		row, ok, err := tx.Get(table, path.pointKey)
		if err != nil || !ok {
			return nil, err
		}
		return []storage.KV{{Key: path.pointKey, Row: row}}, nil
	case kindRange:
		return tx.ScanRange(table, path.lo, path.hi)
	case kindIndexEq:
		return tx.ScanIndexEq(table, path.indexName, path.indexVal)
	default:
		return tx.ScanAll(table)
	}
}

// coerceValue converts a value to the column type where SQL allows it
// implicitly (int literals into FLOAT columns, and integral floats into
// INT columns).
func coerceValue(v any, t storage.ColType) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case storage.TFloat:
		if iv, ok := v.(int64); ok {
			return float64(iv), nil
		}
	case storage.TInt:
		if fv, ok := v.(float64); ok && fv == float64(int64(fv)) {
			return int64(fv), nil
		}
	}
	if err := storage.CheckValue(t, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Explain returns a one-line description of the access path a SELECT,
// UPDATE, or DELETE would use for its primary table — handy in tests
// and the CLI.
func Explain(e *storage.Engine, stmt Stmt, params []any) (string, error) {
	var table, alias string
	var where Expr
	switch s := stmt.(type) {
	case *Select:
		table, alias, where = s.From.Table, s.From.Alias, s.Where
	case *Update:
		table, alias, where = s.Table, s.Table, s.Where
	case *Delete:
		table, alias, where = s.Table, s.Table, s.Where
	default:
		return "", fmt.Errorf("sql: cannot explain %T", stmt)
	}
	schema, ok := e.Schema(table)
	if !ok {
		return "", fmt.Errorf("%w: %s", storage.ErrNoTable, table)
	}
	path := choosePath(schema, alias, where, params)
	return fmt.Sprintf("%s on %s", path.kind, table), nil
}
