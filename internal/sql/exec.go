package sql

import (
	"fmt"
	"sort"

	"sconrep/internal/storage"
)

// Result is the outcome of executing a statement. SELECTs populate
// Columns and Rows; INSERT/UPDATE/DELETE populate Affected.
type Result struct {
	Columns  []string
	Rows     [][]any
	Affected int
}

// Exec parses and executes a statement inside tx.
func Exec(tx *storage.Txn, e *storage.Engine, src string, params ...any) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ExecStmt(tx, e, stmt, params...)
}

// ExecStmt executes a parsed statement inside tx. DDL statements go
// directly to the engine and are not transactional.
func ExecStmt(tx *storage.Txn, e *storage.Engine, stmt Stmt, params ...any) (*Result, error) {
	norm := make([]any, len(params))
	for i, p := range params {
		v, err := normalizeParam(p)
		if err != nil {
			return nil, err
		}
		norm[i] = v
	}
	switch s := stmt.(type) {
	case *Select:
		return execSelect(tx, e, s, norm)
	case *Insert:
		return execInsert(tx, e, s, norm)
	case *Update:
		return execUpdate(tx, e, s, norm)
	case *Delete:
		return execDelete(tx, e, s, norm)
	case *CreateTable:
		return &Result{}, e.CreateTable(s.Schema)
	case *CreateIndex:
		return &Result{}, e.CreateIndex(s.Table, s.Def)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

// joinedRows produces the joined relation for a SELECT: the base-table
// rows (filtered by the best access path) extended through each JOIN.
func joinedRows(tx *storage.Txn, e *storage.Engine, s *Select, params []any) ([]boundTable, [][]any, error) {
	baseSchema, ok := e.Schema(s.From.Table)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", storage.ErrNoTable, s.From.Table)
	}
	tables := []boundTable{{alias: s.From.Alias, schema: baseSchema}}

	path := choosePath(baseSchema, s.From.Alias, s.Where, params)
	kvs, err := fetch(tx, s.From.Table, path)
	if err != nil {
		return nil, nil, err
	}
	rows := make([][]any, len(kvs))
	for i, kv := range kvs {
		rows[i] = kv.Row
	}

	for _, j := range s.Joins {
		rightSchema, ok := e.Schema(j.Right.Table)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s", storage.ErrNoTable, j.Right.Table)
		}
		// Decide which side of ON binds to the tables joined so far.
		leftCol, rightCol, err := orientJoin(j, tables, rightSchema)
		if err != nil {
			return nil, nil, err
		}
		leftResolver := newEnvResolver(tables)
		leftEnv := &env{cols: leftResolver, params: params}
		rci := rightSchema.ColIndex(rightCol.Name)
		if rci < 0 {
			return nil, nil, fmt.Errorf("sql: unknown join column %s.%s", j.Right.Alias, rightCol.Name)
		}

		// Pick the right-side strategy: point lookups when the join
		// column is the whole primary key, index lookups when indexed,
		// hash join otherwise.
		var probe func(val any) ([][]any, error)
		switch {
		case len(rightSchema.Key) == 1 && rightSchema.Key[0] == rightCol.Name:
			probe = func(val any) ([][]any, error) {
				cv, err := coerceValue(val, rightSchema.Columns[rci].Type)
				if err != nil {
					return nil, nil
				}
				row, ok, err := tx.Get(j.Right.Table, storage.EncodeKey(cv))
				if err != nil || !ok {
					return nil, err
				}
				return [][]any{row}, nil
			}
		case indexOn(rightSchema, rightCol.Name) != "":
			ixName := indexOn(rightSchema, rightCol.Name)
			probe = func(val any) ([][]any, error) {
				cv, err := coerceValue(val, rightSchema.Columns[rci].Type)
				if err != nil {
					return nil, nil
				}
				kvs, err := tx.ScanIndexEq(j.Right.Table, ixName, cv)
				if err != nil {
					return nil, err
				}
				out := make([][]any, len(kvs))
				for i, kv := range kvs {
					out[i] = kv.Row
				}
				return out, nil
			}
		default:
			// Hash join: build once over a full scan.
			build := make(map[string][][]any)
			all, err := tx.ScanAll(j.Right.Table)
			if err != nil {
				return nil, nil, err
			}
			for _, kv := range all {
				if kv.Row[rci] == nil {
					continue
				}
				hk := storage.EncodeKey(kv.Row[rci])
				build[hk] = append(build[hk], kv.Row)
			}
			probe = func(val any) ([][]any, error) {
				cv, err := coerceValue(val, rightSchema.Columns[rci].Type)
				if err != nil {
					return nil, nil
				}
				return build[storage.EncodeKey(cv)], nil
			}
		}

		var joined [][]any
		for _, lrow := range rows {
			leftEnv.row = lrow
			val, err := eval(leftCol, leftEnv)
			if err != nil {
				return nil, nil, err
			}
			if val == nil {
				continue
			}
			matches, err := probe(val)
			if err != nil {
				return nil, nil, err
			}
			for _, rrow := range matches {
				combined := make([]any, 0, len(lrow)+len(rrow))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				joined = append(joined, combined)
			}
		}
		rows = joined
		tables = append(tables, boundTable{alias: j.Right.Alias, schema: rightSchema})
	}
	return tables, rows, nil
}

// orientJoin decides which Col of the ON clause references the
// already-joined tables (left) and which references the new table.
func orientJoin(j Join, left []boundTable, rightSchema *storage.Schema) (*Col, *Col, error) {
	a := j.On.L.(*Col)
	b := j.On.R.(*Col)
	belongsRight := func(c *Col) bool {
		if c.Table != "" {
			return c.Table == j.Right.Alias
		}
		return rightSchema.ColIndex(c.Name) >= 0 && !belongsLeftName(c.Name, left)
	}
	switch {
	case belongsRight(b) && !belongsRight(a):
		return a, b, nil
	case belongsRight(a) && !belongsRight(b):
		return b, a, nil
	default:
		return nil, nil, fmt.Errorf("sql: cannot orient join condition %s = %s", exprString(a), exprString(b))
	}
}

func belongsLeftName(name string, left []boundTable) bool {
	for _, bt := range left {
		if bt.schema.ColIndex(name) >= 0 {
			return true
		}
	}
	return false
}

func indexOn(s *storage.Schema, col string) string {
	for _, def := range s.Indexes {
		if def.Column == col {
			return def.Name
		}
	}
	return ""
}

func execSelect(tx *storage.Txn, e *storage.Engine, s *Select, params []any) (*Result, error) {
	tables, rows, err := joinedRows(tx, e, s, params)
	if err != nil {
		return nil, err
	}
	resolver := newEnvResolver(tables)
	ev := &env{cols: resolver, params: params}

	// Residual filter (the access path is conservative).
	if s.Where != nil {
		filtered := rows[:0]
		for _, r := range rows {
			ev.row = r
			v, err := eval(s.Where, ev)
			if err != nil {
				return nil, err
			}
			if b, ok := v.(bool); ok && b {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	// Expand * into column references now that tables are bound.
	items, err := expandStars(s.Items, tables)
	if err != nil {
		return nil, err
	}

	res := &Result{Columns: make([]string, len(items))}
	for i, it := range items {
		if it.Alias != "" {
			res.Columns[i] = it.Alias
		} else {
			res.Columns[i] = exprString(it.Expr)
		}
	}

	aggregated := len(s.GroupBy) > 0 || hasAggregate(items)
	var orderRows [][]any // rows the ORDER BY keys are evaluated on
	if aggregated {
		res.Rows, orderRows, err = execAggregate(s, items, rows, ev)
		if err != nil {
			return nil, err
		}
	} else {
		res.Rows = make([][]any, 0, len(rows))
		orderRows = rows
		for _, r := range rows {
			ev.row = r
			out := make([]any, len(items))
			for i, it := range items {
				out[i], err = eval(it.Expr, ev)
				if err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, out)
		}
	}

	if len(s.OrderBy) > 0 {
		if err := sortRows(s, items, res, orderRows, ev, aggregated); err != nil {
			return nil, err
		}
	}
	if s.Offset > 0 {
		if s.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && len(res.Rows) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
	return res, nil
}

func expandStars(items []SelectItem, tables []boundTable) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, bt := range tables {
			for _, c := range bt.schema.Columns {
				out = append(out, SelectItem{Expr: &Col{Table: bt.alias, Name: c.Name}})
			}
		}
	}
	return out, nil
}

func hasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *Agg:
		return true
	case *BinOp:
		return containsAgg(x.L) || containsAgg(x.R)
	case *Not:
		return containsAgg(x.E)
	case *IsNull:
		return containsAgg(x.E)
	case *Between:
		return containsAgg(x.E) || containsAgg(x.Lo) || containsAgg(x.Hi)
	}
	return false
}

// aggState accumulates one aggregate function over a group.
type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	sawFloat bool
	min, max any
	distinct map[string]bool
}

func (a *aggState) add(v any) {
	if v == nil {
		return
	}
	if a.distinct != nil {
		k := storage.EncodeKey(v)
		if a.distinct[k] {
			return
		}
		a.distinct[k] = true
	}
	a.count++
	switch n := v.(type) {
	case int64:
		a.sumI += n
		a.sumF += float64(n)
	case float64:
		a.sawFloat = true
		a.sumF += n
	}
	if a.min == nil || storage.CompareValues(v, a.min) < 0 {
		a.min = v
	}
	if a.max == nil || storage.CompareValues(v, a.max) > 0 {
		a.max = v
	}
}

func (a *aggState) result(fn string) any {
	switch fn {
	case "COUNT":
		return a.count
	case "SUM":
		if a.count == 0 {
			return nil
		}
		if a.sawFloat {
			return a.sumF
		}
		return a.sumI
	case "AVG":
		if a.count == 0 {
			return nil
		}
		return a.sumF / float64(a.count)
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return nil
}

// group holds per-group state during aggregation.
type group struct {
	firstRow []any // representative joined row, for grouping exprs
	aggs     map[int]*aggState
}

// execAggregate evaluates grouped (or globally aggregated) output rows.
// It returns the result rows and, aligned with them, the rows ORDER BY
// keys should be evaluated against (the result rows themselves).
func execAggregate(s *Select, items []SelectItem, rows [][]any, ev *env) ([][]any, [][]any, error) {
	groups := map[string]*group{}
	var orderKeys []string

	for _, r := range rows {
		ev.row = r
		keyVals := make([]any, len(s.GroupBy))
		for i, g := range s.GroupBy {
			v, err := eval(g, ev)
			if err != nil {
				return nil, nil, err
			}
			keyVals[i] = v
		}
		gk := storage.EncodeKey(keyVals...)
		grp, ok := groups[gk]
		if !ok {
			grp = &group{firstRow: r, aggs: map[int]*aggState{}}
			groups[gk] = grp
			orderKeys = append(orderKeys, gk)
		}
		// Accumulate every aggregate that appears in the select list.
		for i, it := range items {
			if err := accumulate(it.Expr, i*1000, grp, ev); err != nil {
				return nil, nil, err
			}
		}
	}

	// Empty input with no GROUP BY still yields one (empty) group.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{aggs: map[int]*aggState{}}
		orderKeys = append(orderKeys, "")
	}

	var out [][]any
	for _, gk := range orderKeys {
		grp := groups[gk]
		ev.row = grp.firstRow
		row := make([]any, len(items))
		for i, it := range items {
			v, err := evalWithAggs(it.Expr, i*1000, grp, ev)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, out, nil
}

// accumulate walks an expression and feeds each aggregate node. Nodes
// are keyed by a base id plus traversal position so the same Agg node
// maps to the same state on every row.
func accumulate(e Expr, id int, grp *group, ev *env) error {
	switch x := e.(type) {
	case *Agg:
		st, ok := grp.aggs[id]
		if !ok {
			st = &aggState{}
			if x.Distinct {
				st.distinct = map[string]bool{}
			}
			grp.aggs[id] = st
		}
		if x.Star {
			st.count++
			return nil
		}
		v, err := eval(x.Arg, ev)
		if err != nil {
			return err
		}
		st.add(v)
		return nil
	case *BinOp:
		if err := accumulate(x.L, id*2+1, grp, ev); err != nil {
			return err
		}
		return accumulate(x.R, id*2+2, grp, ev)
	case *Not:
		return accumulate(x.E, id*2+1, grp, ev)
	}
	return nil
}

// evalWithAggs evaluates an expression, substituting aggregate nodes
// with their accumulated results.
func evalWithAggs(e Expr, id int, grp *group, ev *env) (any, error) {
	switch x := e.(type) {
	case *Agg:
		st, ok := grp.aggs[id]
		if !ok {
			if x.Star || x.Func == "COUNT" {
				return int64(0), nil
			}
			return nil, nil
		}
		return st.result(x.Func), nil
	case *BinOp:
		if !containsAgg(x) {
			return eval(x, ev)
		}
		l, err := evalWithAggs(x.L, id*2+1, grp, ev)
		if err != nil {
			return nil, err
		}
		r, err := evalWithAggs(x.R, id*2+2, grp, ev)
		if err != nil {
			return nil, err
		}
		return evalBinOp(&BinOp{Op: x.Op, L: &Lit{Val: l}, R: &Lit{Val: r}}, ev)
	default:
		return eval(e, ev)
	}
}

// sortRows applies ORDER BY. In plain mode keys are computed from the
// joined rows; in aggregated mode from the output rows, with aggregate
// expressions matched positionally against select items.
func sortRows(s *Select, items []SelectItem, res *Result, orderRows [][]any, ev *env, aggregated bool) error {
	type keyed struct {
		out  []any
		keys []any
	}
	ks := make([]keyed, len(res.Rows))
	for i := range res.Rows {
		keys := make([]any, len(s.OrderBy))
		for ki, ob := range s.OrderBy {
			var v any
			var err error
			if aggregated {
				v, err = orderKeyAggregated(ob.Expr, items, res.Rows[i], ev)
			} else {
				ev.row = orderRows[i]
				v, err = eval(ob.Expr, ev)
			}
			if err != nil {
				return err
			}
			keys[ki] = v
		}
		ks[i] = keyed{out: res.Rows[i], keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for ki, ob := range s.OrderBy {
			c := storage.CompareValues(ks[a].keys[ki], ks[b].keys[ki])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range ks {
		res.Rows[i] = ks[i].out
	}
	return nil
}

// orderKeyAggregated resolves an ORDER BY expression against the
// aggregated output: aliases and textually identical select items map
// to their output column.
func orderKeyAggregated(e Expr, items []SelectItem, outRow []any, ev *env) (any, error) {
	want := exprString(e)
	for i, it := range items {
		if it.Alias != "" {
			if c, ok := e.(*Col); ok && c.Table == "" && c.Name == it.Alias {
				return outRow[i], nil
			}
		}
		if exprString(it.Expr) == want {
			return outRow[i], nil
		}
	}
	// Fall back to a plain evaluation (grouping column not projected).
	return eval(e, ev)
}

func execInsert(tx *storage.Txn, e *storage.Engine, s *Insert, params []any) (*Result, error) {
	schema, ok := e.Schema(s.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %s", storage.ErrNoTable, s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		ci := schema.ColIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", s.Table, c)
		}
		colIdx[i] = ci
	}
	ev := &env{params: params}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("sql: INSERT row has %d values, want %d", len(exprRow), len(cols))
		}
		row := make([]any, schema.NumColumns())
		for i, ex := range exprRow {
			v, err := eval(ex, ev)
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(v, schema.Columns[colIdx[i]].Type)
			if err != nil {
				return nil, err
			}
			row[colIdx[i]] = cv
		}
		if err := tx.Insert(s.Table, row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// matchingKVs returns rows of a single table matching WHERE, for
// UPDATE and DELETE.
func matchingKVs(tx *storage.Txn, e *storage.Engine, table string, where Expr, params []any) ([]storage.KV, *storage.Schema, error) {
	schema, ok := e.Schema(table)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", storage.ErrNoTable, table)
	}
	path := choosePath(schema, table, where, params)
	kvs, err := fetch(tx, table, path)
	if err != nil {
		return nil, nil, err
	}
	if where == nil {
		return kvs, schema, nil
	}
	resolver := newEnvResolver([]boundTable{{alias: table, schema: schema}})
	ev := &env{cols: resolver, params: params}
	out := kvs[:0]
	for _, kv := range kvs {
		ev.row = kv.Row
		v, err := eval(where, ev)
		if err != nil {
			return nil, nil, err
		}
		if b, ok := v.(bool); ok && b {
			out = append(out, kv)
		}
	}
	return out, schema, nil
}

func execUpdate(tx *storage.Txn, e *storage.Engine, s *Update, params []any) (*Result, error) {
	kvs, schema, err := matchingKVs(tx, e, s.Table, s.Where, params)
	if err != nil {
		return nil, err
	}
	setIdx := make([]int, len(s.Set))
	for i, sc := range s.Set {
		ci := schema.ColIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", s.Table, sc.Column)
		}
		setIdx[i] = ci
	}
	resolver := newEnvResolver([]boundTable{{alias: s.Table, schema: schema}})
	ev := &env{cols: resolver, params: params}
	for _, kv := range kvs {
		ev.row = kv.Row
		newRow := append([]any(nil), kv.Row...)
		for i, sc := range s.Set {
			v, err := eval(sc.Expr, ev)
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(v, schema.Columns[setIdx[i]].Type)
			if err != nil {
				return nil, err
			}
			newRow[setIdx[i]] = cv
		}
		if err := tx.Update(s.Table, kv.Key, newRow); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(kvs)}, nil
}

func execDelete(tx *storage.Txn, e *storage.Engine, s *Delete, params []any) (*Result, error) {
	kvs, _, err := matchingKVs(tx, e, s.Table, s.Where, params)
	if err != nil {
		return nil, err
	}
	for _, kv := range kvs {
		if err := tx.Delete(s.Table, kv.Key); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(kvs)}, nil
}

// Tables returns the set of tables a statement reads or writes — the
// static table-set the fine-grained consistency technique synchronizes
// on. DDL statements return their target table.
func Tables(stmt Stmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	switch s := stmt.(type) {
	case *Select:
		add(s.From.Table)
		for _, j := range s.Joins {
			add(j.Right.Table)
		}
	case *Insert:
		add(s.Table)
	case *Update:
		add(s.Table)
	case *Delete:
		add(s.Table)
	case *CreateTable:
		add(s.Schema.Table)
	case *CreateIndex:
		add(s.Table)
	}
	sort.Strings(out)
	return out
}

// IsReadOnly reports whether the statement cannot modify data.
func IsReadOnly(stmt Stmt) bool {
	_, ok := stmt.(*Select)
	return ok
}

// Stmt preparation: a prepared statement caches the parse and exposes
// the static table-set.

// Prepared is a parsed statement ready for repeated execution with
// different parameters.
type Prepared struct {
	SQL      string
	Stmt     Stmt
	TableSet []string
	ReadOnly bool
}

// Prepare parses src once.
func Prepare(src string) (*Prepared, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		SQL:      src,
		Stmt:     stmt,
		TableSet: Tables(stmt),
		ReadOnly: IsReadOnly(stmt),
	}, nil
}

// Exec runs the prepared statement in tx.
func (p *Prepared) Exec(tx *storage.Txn, e *storage.Engine, params ...any) (*Result, error) {
	return ExecStmt(tx, e, p.Stmt, params...)
}
