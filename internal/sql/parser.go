package sql

import (
	"fmt"
	"strconv"

	"sconrep/internal/storage"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	nParams int
}

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sql: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sql: expected statement, got %s", t)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	default:
		return nil, fmt.Errorf("sql: unsupported statement %s", t)
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	for {
		if p.acceptSymbol("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				name, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = name
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		right, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		lcol, err := p.parseQualifiedCol()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		rcol, err := p.parseQualifiedCol()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Right: right, On: &BinOp{Op: "=", L: lcol, R: rcol}})
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		sel.Offset = n
	}
	return sel, nil
}

func (p *parser) parseIntLit() (int, error) {
	t := p.peek()
	if t.kind != tokInt {
		return 0, fmt.Errorf("sql: expected integer, got %s", t)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q: %w", t.text, err)
	}
	return n, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if t := p.peek(); t.kind == tokIdent {
		p.next()
		ref.Alias = t.text
	} else if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	}
	return ref, nil
}

func (p *parser) parseQualifiedCol() (*Col, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &Col{Table: name, Name: col}, nil
	}
	return &Col{Name: name}, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var rowExprs []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rowExprs = append(rowExprs, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, rowExprs)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, SetClause{Column: col, Expr: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLE") {
		return p.parseCreateTable()
	}
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex()
	}
	return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE, got %s", p.peek())
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	schema := &storage.Schema{Table: table}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				schema.Key = append(schema.Key, col)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ, err := p.parseColType()
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, storage.Column{Name: col, Type: typ})
			// PRIMARY KEY may follow a column definition inline.
			if p.acceptKeyword("PRIMARY") {
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				schema.Key = append(schema.Key, col)
			}
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Schema: schema}, nil
}

func (p *parser) parseColType() (storage.ColType, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, fmt.Errorf("sql: expected column type, got %s", t)
	}
	p.next()
	var typ storage.ColType
	switch t.text {
	case "INT", "BIGINT":
		typ = storage.TInt
	case "FLOAT", "DOUBLE":
		typ = storage.TFloat
	case "TEXT", "VARCHAR":
		typ = storage.TString
	case "BOOL", "BOOLEAN":
		typ = storage.TBool
	default:
		return 0, fmt.Errorf("sql: unknown column type %s", t)
	}
	// Optional length suffix: VARCHAR(100).
	if p.acceptSymbol("(") {
		if _, err := p.parseIntLit(); err != nil {
			return 0, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return 0, err
		}
	}
	return typ, nil
}

func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Table: table, Def: storage.IndexDef{Name: name, Column: col}}, nil
}

// Expression grammar, loosest binding first:
//
//	expr   := orExpr
//	orExpr := andExpr (OR andExpr)*
//	andExpr:= notExpr (AND notExpr)*
//	notExpr:= NOT notExpr | cmpExpr
//	cmpExpr:= addExpr ((=|<>|!=|<|<=|>|>=|LIKE) addExpr
//	          | IS [NOT] NULL | BETWEEN addExpr AND addExpr)?
//	addExpr:= mulExpr ((+|-) mulExpr)*
//	mulExpr:= unary ((*|/) unary)*
//	unary  := - unary | primary
//	primary:= literal | placeholder | aggregate | column | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "LIKE", L: l, R: r}, nil
	}
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Negate: negate}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if lit, ok := e.(*Lit); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &Lit{Val: -v}, nil
			case float64:
				return &Lit{Val: -v}, nil
			}
		}
		return &BinOp{Op: "-", L: &Lit{Val: int64(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q: %w", t.text, err)
		}
		return &Lit{Val: n}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad float %q: %w", t.text, err)
		}
		return &Lit{Val: f}, nil
	case tokString:
		p.next()
		return &Lit{Val: t.text}, nil
	case tokPlaceholder:
		p.next()
		ph := &Placeholder{Index: p.nParams}
		p.nParams++
		return ph, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Lit{Val: nil}, nil
		case "TRUE":
			p.next()
			return &Lit{Val: true}, nil
		case "FALSE":
			p.next()
			return &Lit{Val: false}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			agg := &Agg{Func: t.text}
			if t.text == "COUNT" && p.acceptSymbol("*") {
				agg.Star = true
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
	case tokIdent:
		return p.parseQualifiedCol()
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}
