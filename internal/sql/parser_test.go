package sql

import (
	"strings"
	"testing"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`SELECT a, 'it''s', 1.5, 2e3, -- comment
		? FROM t WHERE x <= 10 AND y != 'z';`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"SELECT", "a", "it's", "1.5", "2e3", "?", "FROM", "t", "WHERE", "<=", "10", "AND", "!=", "z", ";"} {
		if !strings.Contains(joined, want) {
			t.Errorf("token stream missing %q: %s", want, joined)
		}
	}
	if texts[len(texts)-1] != "" || kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestParseSelectShapes(t *testing.T) {
	s := mustParse(t, `SELECT a, b AS bee, COUNT(*) FROM t1 x
		JOIN t2 ON x.id = t2.ref
		INNER JOIN t3 y ON t2.k = y.k
		WHERE a > 1 AND b LIKE 'p%' OR NOT c
		GROUP BY a, b
		ORDER BY a DESC, bee
		LIMIT 10 OFFSET 5`).(*Select)
	if len(s.Items) != 3 || s.Items[1].Alias != "bee" {
		t.Fatalf("items = %+v", s.Items)
	}
	if s.From.Table != "t1" || s.From.Alias != "x" {
		t.Fatalf("from = %+v", s.From)
	}
	if len(s.Joins) != 2 || s.Joins[1].Right.Alias != "y" {
		t.Fatalf("joins = %+v", s.Joins)
	}
	if len(s.GroupBy) != 2 || len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("groupBy=%d orderBy=%+v", len(s.GroupBy), s.OrderBy)
	}
	if s.Limit != 10 || s.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d", s.Limit, s.Offset)
	}
}

func TestParsePrecedence(t *testing.T) {
	// a OR b AND c parses as a OR (b AND c).
	s := mustParse(t, `SELECT * FROM t WHERE a OR b AND c`).(*Select)
	or, ok := s.Where.(*BinOp)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %+v", s.Where)
	}
	and, ok := or.R.(*BinOp)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %+v", or.R)
	}
	// 1 + 2 * 3 parses as 1 + (2 * 3).
	s = mustParse(t, `SELECT 1 + 2 * 3 FROM t`).(*Select)
	add := s.Items[0].Expr.(*BinOp)
	if add.Op != "+" {
		t.Fatalf("top arith = %q", add.Op)
	}
	if mul := add.R.(*BinOp); mul.Op != "*" {
		t.Fatalf("right of + = %q", mul.Op)
	}
	// Parentheses override.
	s = mustParse(t, `SELECT (1 + 2) * 3 FROM t`).(*Select)
	mul := s.Items[0].Expr.(*BinOp)
	if mul.Op != "*" {
		t.Fatalf("top with parens = %q", mul.Op)
	}
}

func TestParsePlaceholderNumbering(t *testing.T) {
	s := mustParse(t, `SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?`).(*Select)
	var idxs []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Placeholder:
			idxs = append(idxs, x.Index)
		case *BinOp:
			walk(x.L)
			walk(x.R)
		case *Between:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	walk(s.Where)
	if len(idxs) != 3 || idxs[0] != 0 || idxs[1] != 1 || idxs[2] != 2 {
		t.Fatalf("placeholder indexes = %v", idxs)
	}
}

func TestParseInsertVariants(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES (1, 'a'), (2, 'b')`).(*Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 0 {
		t.Fatalf("insert = %+v", ins)
	}
	ins = mustParse(t, `INSERT INTO t (x, y) VALUES (?, ?)`).(*Insert)
	if len(ins.Columns) != 2 || ins.Columns[1] != "y" {
		t.Fatalf("insert cols = %+v", ins.Columns)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 3`).(*Update)
	if len(upd.Set) != 2 || upd.Set[0].Column != "a" || upd.Where == nil {
		t.Fatalf("update = %+v", upd)
	}
	del := mustParse(t, `DELETE FROM t`).(*Delete)
	if del.Where != nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseCreateVariants(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE t (
		id INT PRIMARY KEY,
		name VARCHAR(40),
		score DOUBLE,
		ok BOOLEAN
	)`).(*CreateTable)
	if len(ct.Schema.Columns) != 4 || len(ct.Schema.Key) != 1 || ct.Schema.Key[0] != "id" {
		t.Fatalf("schema = %+v", ct.Schema)
	}
	ct = mustParse(t, `CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))`).(*CreateTable)
	if len(ct.Schema.Key) != 2 {
		t.Fatalf("composite key = %+v", ct.Schema.Key)
	}
	ci := mustParse(t, `CREATE INDEX i ON t (col)`).(*CreateIndex)
	if ci.Table != "t" || ci.Def.Column != "col" {
		t.Fatalf("index = %+v", ci)
	}
}

func TestParseLiterals(t *testing.T) {
	s := mustParse(t, `SELECT NULL, TRUE, FALSE, -5, -2.5, 'quo''te' FROM t`).(*Select)
	vals := make([]any, len(s.Items))
	for i, it := range s.Items {
		vals[i] = it.Expr.(*Lit).Val
	}
	if vals[0] != nil || vals[1] != true || vals[2] != false {
		t.Fatalf("literals = %v", vals)
	}
	if vals[3].(int64) != -5 || vals[4].(float64) != -2.5 || vals[5].(string) != "quo'te" {
		t.Fatalf("literals = %v", vals)
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, `SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e) FROM t`).(*Select)
	star := s.Items[0].Expr.(*Agg)
	if !star.Star {
		t.Fatal("COUNT(*) not star")
	}
	distinct := s.Items[1].Expr.(*Agg)
	if !distinct.Distinct {
		t.Fatal("DISTINCT lost")
	}
	for i, fn := range []string{"COUNT", "COUNT", "SUM", "AVG", "MIN", "MAX"} {
		if got := s.Items[i].Expr.(*Agg).Func; got != fn {
			t.Fatalf("item %d func = %s", i, got)
		}
	}
}

func TestParseIsNullAndBetween(t *testing.T) {
	s := mustParse(t, `SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c BETWEEN 1 AND 10`).(*Select)
	conjs := splitConjuncts(s.Where, nil)
	if len(conjs) != 3 {
		t.Fatalf("conjuncts = %d", len(conjs))
	}
	isn := conjs[0].(*IsNull)
	if isn.Negate {
		t.Fatal("IS NULL negated")
	}
	isnn := conjs[1].(*IsNull)
	if !isnn.Negate {
		t.Fatal("IS NOT NULL not negated")
	}
	if _, ok := conjs[2].(*Between); !ok {
		t.Fatalf("third conjunct = %T", conjs[2])
	}
}

func TestParseTrailingGarbage(t *testing.T) {
	if _, err := Parse(`SELECT * FROM t garbage extra`); err == nil {
		t.Fatal("trailing alias+garbage accepted")
	}
	// A single trailing semicolon is fine.
	mustParse(t, `SELECT * FROM t;`)
}

func TestExprString(t *testing.T) {
	s := mustParse(t, `SELECT a + 1, COUNT(DISTINCT b), x.c FROM t x WHERE a IS NULL`).(*Select)
	if got := exprString(s.Items[0].Expr); got != "(a + 1)" {
		t.Errorf("exprString = %q", got)
	}
	if got := exprString(s.Items[1].Expr); got != "COUNT(DISTINCT b)" {
		t.Errorf("exprString = %q", got)
	}
	if got := exprString(s.Items[2].Expr); got != "x.c" {
		t.Errorf("exprString = %q", got)
	}
	if got := exprString(s.Where); got != "a IS NULL" {
		t.Errorf("exprString = %q", got)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	mustParse(t, `select a from t where b = 1 order by a limit 1`)
	mustParse(t, `SeLeCt a FrOm t`)
}
