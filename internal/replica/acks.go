package replica

import "sync"

// ackBox coalesces the drainer's apply acknowledgments into the
// highest pending version for the per-replica notifier goroutine to
// ship. The certifier treats acks as cumulative (replicas apply in
// strict version order), so collapsing a backlog of acks into one is
// sound — and the drainer's hot path is reduced to a mutex-protected
// max and a non-blocking wakeup: no goroutine spawn, no allocation.
type ackBox struct {
	// mu guards the ack high-water marks; the applier posts acks from
	// inside the replica's apply critical section.
	// locks after Replica.mu
	mu sync.Mutex
	// max is the highest version posted.
	// guarded by mu
	max uint64
	// sent is the highest version handed to the notifier.
	// guarded by mu
	sent uint64
	// stopped drops further posts.
	// guarded by mu
	stopped bool
	wake    chan struct{} // 1-buffered wakeup
}

func newAckBox() *ackBox {
	return &ackBox{wake: make(chan struct{}, 1)}
}

// post registers version v for acknowledgment. Posts at or below the
// pending maximum are no-ops; posts after stop are dropped (the
// certifier stops waiting for a crashed replica on Unsubscribe).
func (a *ackBox) post(v uint64) {
	a.mu.Lock()
	if a.stopped || v <= a.max {
		a.mu.Unlock()
		return
	}
	a.max = v
	a.mu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// next blocks until a version above the last handed-out one is
// pending and returns it; ok is false once the box is stopped and
// drained.
func (a *ackBox) next() (v uint64, ok bool) {
	for {
		a.mu.Lock()
		if a.max > a.sent {
			a.sent = a.max
			v = a.sent
			a.mu.Unlock()
			return v, true
		}
		if a.stopped {
			a.mu.Unlock()
			return 0, false
		}
		a.mu.Unlock()
		<-a.wake
	}
}

// stop wakes and retires the notifier; subsequent posts are dropped.
func (a *ackBox) stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}
