package replica

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/pstore"
	"sconrep/internal/storage"
)

// recordingCert wraps a CertService and records every History call —
// the probe for the tentpole's acceptance check: a replica restored
// from checkpoint + WAL must ask the certifier only for the history
// suffix its durable state missed, never for the full history.
type recordingCert struct {
	CertService
	mu     sync.Mutex
	afters []uint64
}

func (c *recordingCert) History(after uint64) []certifier.Refresh {
	c.mu.Lock()
	c.afters = append(c.afters, after)
	c.mu.Unlock()
	return c.CertService.History(after)
}

// waitLogged blocks until the store's contiguous durable tail reaches
// v. Logging is asynchronous relative to apply visibility, so a test
// that needs exact recovery must wait for durability, not just for
// WaitVersion.
func waitLogged(t *testing.T, st *pstore.Store, v uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().LoggedVersion < v {
		if time.Now().After(deadline) {
			t.Fatalf("durable log stuck at %d, want %d", st.Stats().LoggedVersion, v)
		}
		time.Sleep(time.Millisecond)
	}
}

// firstHistoryAfter returns the cursor of recovery's first History
// page. History is paged, so later calls advance the cursor; the first
// one proves where backfill started.
func (c *recordingCert) firstHistoryAfter(t *testing.T) uint64 {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.afters) == 0 {
		t.Fatal("History never called during recovery")
	}
	return c.afters[0]
}

// TestDiskRestartBackfillsOnlyHistorySuffix is the tentpole scenario
// end to end at the replica layer: a durable replica is killed without
// warning (Crash + backend Abandon — no graceful close), its store is
// reopened from the latest checkpoint plus the WAL suffix, and the
// replica resumes via RecoverFrom. The certifier must be asked only
// for versions after the recovered Vlocal, and the recovered replica
// must converge to byte-identical state with a never-crashed peer.
func TestDiskRestartBackfillsOnlyHistorySuffix(t *testing.T) {
	dir := t.TempDir()
	cert := certifier.New()
	eng0 := storage.NewEngine()
	loadKV(t, eng0)
	r0 := New(Config{ID: 0, EarlyCert: true}, eng0, Local(cert))
	defer r0.Crash()
	st, err := pstore.Open(dir, pstore.Options{Bootstrap: kvBoot})
	if err != nil {
		t.Fatal(err)
	}
	rc := &recordingCert{CertService: Local(cert)}
	r1 := NewWithBackend(Config{ID: 1, EarlyCert: true}, st, rc)
	defer r1.Crash()
	if err := cert.StartAt(r0.Version()); err != nil {
		t.Fatal(err)
	}

	// Refresh traffic plus one local commit on the durable replica:
	// both apply paths must feed the durable log.
	for i := 0; i < 8; i++ {
		commitUpdate(t, r0, int64(i%10), fmt.Sprintf("pre-%d", i))
	}
	commitUpdate(t, r1, 9, "local-pre")
	waitVersion(t, r1, cert.Version())
	if err := st.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ckptV := st.Stats().CheckpointVersion
	if ckptV == 0 {
		t.Fatal("checkpoint did not advance")
	}

	// Kill -9: detach the replica and abandon the store mid-flight.
	r1.Crash()
	st.Abandon()

	// The cluster makes progress while the replica is down.
	for i := 0; i < 5; i++ {
		commitUpdate(t, r0, int64(i), fmt.Sprintf("down-%d", i))
	}
	final := cert.Version()

	// Disk restart: recover the store, then the replica from it.
	st2, err := pstore.Open(dir, pstore.Options{Bootstrap: kvBoot})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recovered := st2.Engine().Version()
	if recovered < ckptV {
		t.Fatalf("recovered version %d below checkpoint %d", recovered, ckptV)
	}
	if err := r1.RecoverFrom(st2); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, r1, final)

	if after := rc.firstHistoryAfter(t); after != recovered {
		t.Fatalf("recovery asked History(after=%d), want the recovered Vlocal %d", after, recovered)
	}

	// Byte-identical equivalence with the never-crashed peer.
	want, err := pstore.SnapshotAt(r0.Engine(), final)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pstore.SnapshotAt(r1.Engine(), final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("recovered replica state differs from never-crashed peer")
	}

	// And it serves again: commits originate here and are logged.
	res := commitUpdate(t, r1, 0, "post")
	waitVersion(t, r0, res.Version)
	if got := readKV(t, r0, 0); got != "post" {
		t.Fatalf("post-recovery commit lost: %q", got)
	}
}

// A crashed replica whose restore point fell below the certifier's
// history floor can never be backfilled; Recover must fail loudly and
// leave the replica detached rather than serve silently diverged data.
func TestRecoverFailsLoudlyOnTrimmedHistory(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()
	commitUpdate(t, rg.replicas[0], 1, "before")
	waitVersion(t, rg.replicas[1], rg.cert.Version())
	rg.replicas[1].Crash()

	for i := 0; i < 6; i++ {
		commitUpdate(t, rg.replicas[0], int64(i), fmt.Sprintf("during-%d", i))
	}
	// Trim everything but the newest version: the crashed replica's
	// suffix is gone.
	rg.cert.TrimBelow(rg.cert.Version() - 1)

	if err := rg.replicas[1].Recover(); err == nil {
		t.Fatal("Recover succeeded over a trimmed history gap")
	}
	if !rg.replicas[1].Crashed() {
		t.Fatal("replica serving after a failed recovery")
	}
}

// In-process crash recovery with the SAME backend must realign the
// durable log: versions backfilled from history are logged, and the
// store keeps sequencing future runs instead of parking them behind a
// gap.
func TestRecoverRealignsDurableLog(t *testing.T) {
	dir := t.TempDir()
	cert := certifier.New()
	eng0 := storage.NewEngine()
	loadKV(t, eng0)
	r0 := New(Config{ID: 0, EarlyCert: true}, eng0, Local(cert))
	defer r0.Crash()
	st, err := pstore.Open(dir, pstore.Options{Bootstrap: kvBoot})
	if err != nil {
		t.Fatal(err)
	}
	r1 := NewWithBackend(Config{ID: 1, EarlyCert: true}, st, Local(cert))
	defer r1.Crash()
	if err := cert.StartAt(r0.Version()); err != nil {
		t.Fatal(err)
	}

	commitUpdate(t, r0, 1, "a")
	waitVersion(t, r1, cert.Version())
	r1.Crash()
	for i := 0; i < 4; i++ {
		commitUpdate(t, r0, int64(i), fmt.Sprintf("b-%d", i))
	}
	if err := r1.Recover(); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, r1, cert.Version())
	commitUpdate(t, r1, 5, "after-recover")
	final := cert.Version()
	waitVersion(t, r1, final)
	waitVersion(t, r0, final)
	waitLogged(t, st, final)

	// Everything — pre-crash, backfilled, and post-recovery — must be
	// durable: abandon the store and recover from disk alone.
	r1.Crash()
	st.Abandon()
	st2, err := pstore.Open(dir, pstore.Options{Bootstrap: kvBoot})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Engine().Version(); got != final {
		t.Fatalf("durable recovery reached %d, want %d", got, final)
	}
	want, err := pstore.SnapshotAt(r0.Engine(), final)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pstore.SnapshotAt(st2.Engine(), final)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("durable state differs from never-crashed peer")
	}
}
