package replica

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// applyBatchParallel installs one group-applied refresh batch through
// the conflict-aware worker pool: a dependency DAG over the batch's
// writesets (writeset.NewConflictGraph) lets non-conflicting refreshes
// write into the storage engine concurrently, while a watermark
// publishes versions strictly in order — C5's "apply in parallel,
// commit in order" shape on top of the engine's install/publish split.
//
// Scheduling invariants, which together discharge InstallWriteSet's
// preconditions:
//
//   - an item is handed to a worker only after all its graph
//     predecessors completed, so no two concurrent installs share a
//     record and same-record installs are version-ordered with a
//     happens-before edge (the deps counter);
//   - the watermark advances over the contiguous prefix of completed
//     items, so PublishVersion(v) implies every version ≤ v is fully
//     installed;
//   - a fully-conflicting run (critical path == batch length) falls
//     back to the serial engine batch path, so pathological workloads
//     pay no scheduling overhead.
//
// Mid-batch publishes do NOT broadcast r.cond: snapshot reads observe
// the published watermark directly through Begin (no wait involved),
// and version waiters (commit sync, tests) are woken by the caller's
// broadcast under r.mu after the batch completes — exactly when the
// serial path would have published, so no waiter waits longer than it
// did before parallel apply. Per-publish broadcasts were measured to
// cost more than the installs themselves on non-conflicting backlogs
// (a wakeup storm of r.mu acquisitions).
//
// The caller must hold the r.applying window (at most one batch inside
// the engine) and must NOT hold r.mu.
func (r *Replica) applyBatchParallel(wss []*writeset.WriteSet, start uint64) error {
	n := len(wss)
	g := r.gb.Build(wss)
	if o := r.obs.Load(); o != nil {
		o.applyParallelism.ObserveValue(float64(n) / float64(g.CriticalPath))
	}
	if g.CriticalPath == n {
		// One pure dependency chain: every install would wait for its
		// predecessor anyway, so take the serial single-critical-section
		// path and skip the pool entirely.
		if o := r.obs.Load(); o != nil {
			o.applySerialFallbacks.Inc()
		}
		if err := r.engine().ApplyWriteSetBatch(wss, start); err != nil {
			return err
		}
		r.appliedRefreshes.Add(int64(n))
		return nil
	}

	workers := r.cfg.ApplyWorkers
	if workers > n {
		workers = n
	}
	if g.Edges == 0 {
		// Pairwise record-disjoint batch: no scheduling needed at all.
		// Contiguous stripes amortize the engine and table locks across
		// many installs instead of paying them per item.
		return r.applyBatchStriped(wss, start, workers)
	}

	sched := &parallelSchedule{
		r:     r,
		eng:   r.engine(),
		wss:   wss,
		succs: g.Succs,
		start: start,
		ready: make(chan int, n),
		quit:  make(chan struct{}),
	}
	sched.deps = make([]atomic.Int32, n)
	sched.installed = make([]atomic.Bool, n)
	for i := 0; i < n; i++ {
		sched.deps[i].Store(int32(g.Deps[i]))
	}
	// Seed sources in version order so the watermark starts moving on
	// the oldest versions first.
	for i := 0; i < n; i++ {
		if g.Deps[i] == 0 {
			sched.ready <- i
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sched.run()
		}()
	}
	sched.run() // the drainer's goroutine is the pool's first worker
	wg.Wait()
	if err := sched.err.Load(); err != nil {
		return *err
	}
	return nil
}

// applyBatchStriped installs an edge-free batch (every writeset
// pairwise record-disjoint) by splitting it into one contiguous stripe
// per worker. Each stripe goes into the engine through one
// InstallWriteSets call — one engine read-lock and one table-lock
// acquisition per same-table run, instead of per item — and the
// watermark publishes whole stripes as the contiguous prefix of them
// completes. Record-disjointness makes any install interleaving
// equivalent, so stripes need no cross-worker ordering; publish order
// alone preserves reader-visible version order.
//
// Counting order matches the scheduler's: a stripe's refreshes are
// added to appliedRefreshes before its done flag is set, so a
// published version always implies its refreshes are counted.
func (r *Replica) applyBatchStriped(wss []*writeset.WriteSet, start uint64, workers int) error {
	n := len(wss)
	bounds, done := r.stripes.reset(workers)
	base, rem := n/workers, n%workers
	for w := 0; w < workers; w++ {
		bounds[w+1] = bounds[w] + base
		if w < rem {
			bounds[w+1]++
		}
	}
	eng := r.engine()
	var (
		prefix atomic.Int32
		errp   atomic.Pointer[error]
	)
	// advance publishes the contiguous completed-stripe prefix; racing
	// workers CAS-claim stripe positions, and PublishVersion's max-CAS
	// keeps the watermark monotonic whatever the claim order.
	advance := func() {
		for {
			p := prefix.Load()
			if int(p) >= workers || !done[p].Load() {
				return
			}
			if prefix.CompareAndSwap(p, p+1) {
				eng.PublishVersion(start + uint64(bounds[p+1]) - 1)
			}
		}
	}
	runStripe := func(w int) {
		lo, hi := bounds[w], bounds[w+1]
		if err := eng.InstallWriteSets(wss[lo:hi], start+uint64(lo)); err != nil {
			werr := fmt.Errorf("parallel apply stripe at %d: %w", start+uint64(lo), err)
			errp.CompareAndSwap(nil, &werr)
			return
		}
		r.appliedRefreshes.Add(int64(hi - lo))
		done[w].Store(true)
		advance()
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runStripe(w)
		}(w)
	}
	runStripe(0)
	wg.Wait()
	if err := errp.Load(); err != nil {
		return *err
	}
	return nil
}

// stripeScratch recycles the striped applier's per-batch slices. Like
// the replica's graph builder, it is serialized by the applying window
// (at most one batch inside the engine), so it needs no lock.
type stripeScratch struct {
	bounds []int
	done   []atomic.Bool
}

// reset returns zeroed bounds (workers+1) and done (workers) slices,
// growing the backing arrays only when the worker count does.
func (s *stripeScratch) reset(workers int) ([]int, []atomic.Bool) {
	if cap(s.bounds) < workers+1 {
		s.bounds = make([]int, workers+1)
		s.done = make([]atomic.Bool, workers)
	}
	bounds, done := s.bounds[:workers+1], s.done[:workers]
	for i := range bounds {
		bounds[i] = 0
	}
	for i := range done {
		done[i].Store(false)
	}
	return bounds, done
}

// parallelSchedule is the per-batch state of one conflict-aware apply.
// It lives for a single applyBatchParallel call and is shared only by
// that call's worker goroutines; all cross-worker state is atomic or
// channel-carried, so it needs no mutex.
type parallelSchedule struct {
	r     *Replica
	eng   *storage.Engine
	wss   []*writeset.WriteSet
	succs [][]int
	start uint64
	// deps counts each item's unfinished predecessors; an item enters
	// ready when its counter hits zero.
	deps []atomic.Int32
	// installed marks completed installs; the watermark advances over
	// the contiguous true prefix.
	installed []atomic.Bool
	// prefix is the number of items covered by the published watermark.
	prefix atomic.Int64
	// completed counts finished items; the last one closes quit.
	completed atomic.Int64
	// err holds the first install failure; the watermark then stops at
	// the durable prefix, mirroring ApplyWriteSetBatch's semantics.
	err atomic.Pointer[error]
	// ready carries runnable item indices. Capacity len(wss): every
	// item is enqueued at most once, so sends never block.
	ready chan int
	// quit is closed on completion or first error.
	quit chan struct{}
}

// run is one worker's loop: take a runnable item, install it, advance
// the watermark, release successors.
func (s *parallelSchedule) run() {
	for {
		select {
		case <-s.quit:
			return
		case i := <-s.ready:
			v := s.start + uint64(i)
			if err := s.eng.InstallWriteSet(s.wss[i], v); err != nil {
				werr := fmt.Errorf("parallel apply at %d: %w", v, err)
				if s.err.CompareAndSwap(nil, &werr) {
					close(s.quit)
				}
				return
			}
			// Count before the item becomes publishable: once a version
			// is visible, every refresh at or below it is already in
			// AppliedRefreshes — the ordering tests and convergence
			// waiters observe.
			s.r.appliedRefreshes.Add(1)
			s.installed[i].Store(true)
			s.advance()
			for _, succ := range s.succs[i] {
				if s.deps[succ].Add(-1) == 0 {
					s.ready <- succ
				}
			}
			if s.completed.Add(1) == int64(len(s.wss)) {
				close(s.quit)
				return
			}
		}
	}
}

// advance publishes the contiguous completed prefix. Racing workers
// may claim different prefix positions; PublishVersion is a max-CAS,
// so the published watermark is monotonic regardless of claim order,
// and a claimed position always has every earlier install completed.
func (s *parallelSchedule) advance() {
	for {
		p := s.prefix.Load()
		if p >= int64(len(s.wss)) || !s.installed[p].Load() {
			return
		}
		if s.prefix.CompareAndSwap(p, p+1) {
			s.eng.PublishVersion(s.start + uint64(p))
		}
	}
}
