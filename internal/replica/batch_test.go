package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/latency"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// fakeQueue is a directly drivable RefreshSource: tests push refresh
// batches and the replica's applier takes them, with no certifier in
// between.
type fakeQueue struct {
	mu     sync.Mutex
	items  []certifier.Refresh
	notify chan struct{}
	closed bool
}

func newFakeQueue() *fakeQueue { return &fakeQueue{notify: make(chan struct{}, 1)} }

func (q *fakeQueue) push(batch ...certifier.Refresh) {
	q.mu.Lock()
	q.items = append(q.items, batch...)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *fakeQueue) Take() ([]certifier.Refresh, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			batch := q.items
			q.items = nil
			q.mu.Unlock()
			return batch, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.mu.Unlock()
		<-q.notify
	}
}

func (q *fakeQueue) Pending() []certifier.Refresh {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]certifier.Refresh(nil), q.items...)
}

func (q *fakeQueue) QueueLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *fakeQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// fakeCert is a scriptable CertService for deterministic batch tests:
// Certify hands out a predetermined version, Subscribe returns a
// pushable queue, and History replays whatever the test recorded.
type fakeCert struct {
	mu         sync.Mutex
	queue      *fakeQueue
	history    []certifier.Refresh
	acks       []uint64
	nextCommit uint64 // version the next Certify assigns
	// onCertify, when set, runs after a commit decision is made but
	// before it returns to the replica — the window where a reconnect
	// backfill can race the origin's committing claim.
	onCertify func(v, txnID uint64, ws *writeset.WriteSet)
}

func newFakeCert() *fakeCert { return &fakeCert{queue: newFakeQueue()} }

func (f *fakeCert) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, _ dtrace.SpanContext) (certifier.Decision, error) {
	f.mu.Lock()
	v := f.nextCommit
	f.nextCommit = 0
	hook := f.onCertify
	f.mu.Unlock()
	if v == 0 {
		return certifier.Decision{Commit: false}, nil
	}
	if hook != nil {
		hook(v, txnID, ws)
	}
	return certifier.Decision{Commit: true, Version: v}, nil
}

func (f *fakeCert) Subscribe(replicaID int) RefreshSource {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queue = newFakeQueue()
	return f.queue
}

func (f *fakeCert) Unsubscribe(replicaID int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.queue.close()
}

func (f *fakeCert) Applied(replicaID int, v uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.acks = append(f.acks, v)
}

func (f *fakeCert) GlobalCommitted(v uint64) <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

func (f *fakeCert) History(after uint64) []certifier.Refresh {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []certifier.Refresh
	for _, r := range f.history {
		if r.Version > after {
			out = append(out, r)
		}
	}
	return out
}

// mkRefresh builds a refresh writing kv[k] = val at version v, with
// the key encoded exactly as the engine's schema encodes it.
func mkRefresh(t *testing.T, eng *storage.Engine, v uint64, k int64, val string) certifier.Refresh {
	t.Helper()
	schema, ok := eng.Schema("kv")
	if !ok {
		t.Fatal("kv schema missing")
	}
	row := []any{k, val}
	key, err := schema.KeyOf(row)
	if err != nil {
		t.Fatal(err)
	}
	return certifier.Refresh{
		TxnID:   v,
		Version: v,
		Origin:  -1,
		WS:      &writeset.WriteSet{Items: []writeset.Item{{Table: "kv", Key: key, Op: writeset.OpUpdate, Row: row}}},
	}
}

// TestBatchStopsAtLocalCommitVersion drives the exact interleaving the
// batch collector must respect: refreshes 2,3 and 5,6 arrive while a
// local commit owns version 4. The drainer must group-apply [2,3],
// stop, let the local commit take 4, then group-apply [5,6] — never
// wait for a refresh at 4 and never apply past a version owned by a
// local commit.
func TestBatchStopsAtLocalCommitVersion(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	r := New(Config{ID: 0, EarlyCert: true}, eng, fake)
	defer r.Crash()

	tx, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(setStmt, "local", int64(9)); err != nil {
		t.Fatal(err)
	}
	fake.mu.Lock()
	fake.nextCommit = 4
	fake.mu.Unlock()

	// Commit blocks until Vlocal reaches 3.
	done := make(chan error, 1)
	var res CommitResult
	go func() {
		var cerr error
		res, cerr = tx.Commit(false)
		done <- cerr
	}()

	// Out-of-order arrival: the tail of the post-commit batch first.
	fake.queue.push(mkRefresh(t, eng, 5, 5, "r5"), mkRefresh(t, eng, 6, 6, "r6"))
	select {
	case err := <-done:
		t.Fatalf("commit finished before predecessors applied: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fake.queue.push(mkRefresh(t, eng, 2, 2, "r2"), mkRefresh(t, eng, 3, 3, "r3"))

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("commit stuck; Vlocal = %d", r.Version())
	}
	if res.Version != 4 {
		t.Fatalf("commit version = %d, want 4", res.Version)
	}
	waitVersion(t, r, 6)
	if got := r.AppliedRefreshes(); got != 4 {
		t.Fatalf("applied refreshes = %d, want 4", got)
	}
	for k, want := range map[int64]string{2: "r2", 3: "r3", 5: "r5", 6: "r6", 9: "local"} {
		if got := readKV(t, r, k); got != want {
			t.Fatalf("kv[%d] = %q, want %q", k, got, want)
		}
	}
}

// TestCrashMidBatchRecoversViaHistory crashes the replica while the
// drainer is inside a group apply (the latency source keeps it there)
// and recovers through History. The engine retains whatever prefix the
// in-flight batch committed — durable state — and the catch-up must
// backfill exactly the rest, raise the serve floor, and leave the
// replica identical to a crash-free one.
func TestCrashMidBatchRecoversViaHistory(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	lat := latency.NewSource(latency.Model{ApplyWriteSet: 2 * time.Millisecond, Scale: 1}, 1)
	r := New(Config{ID: 0, EarlyCert: true, Latency: lat}, eng, fake)
	defer r.Crash()

	const last = 21
	var backlog []certifier.Refresh
	for v := uint64(2); v <= last; v++ {
		ref := mkRefresh(t, eng, v, int64(v%10), fmt.Sprintf("v%d", v))
		backlog = append(backlog, ref)
		fake.mu.Lock()
		fake.history = append(fake.history, ref)
		fake.mu.Unlock()
	}
	fake.queue.push(backlog...)

	// Crash somewhere inside the batch apply window.
	time.Sleep(5 * time.Millisecond)
	r.Crash()
	if !r.Crashed() {
		t.Fatal("not crashed")
	}

	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, r, last)
	for v := uint64(12); v <= last; v++ {
		if got, want := readKV(t, r, int64(v%10)), fmt.Sprintf("v%d", v); got != want {
			t.Fatalf("kv[%d] = %q, want %q", v%10, got, want)
		}
	}
	// Every replayed version may already be acknowledged elsewhere:
	// transactions must not start below the recovery serve floor.
	tx, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if tx.Snapshot() < last {
		t.Fatalf("post-recovery snapshot %d below serve floor %d", tx.Snapshot(), last)
	}
}

// TestCommitAdoptsOwnBackfilledRefresh pins the interleaving chaos
// found: certifier history includes the replica's OWN commits, so a
// reconnect backfill can deliver a transaction's writeset as a refresh
// before the origin's Commit claims its version slot. The drainer then
// installs it first, and the local commit must adopt that apply —
// committing again would be a version-order panic.
func TestCommitAdoptsOwnBackfilledRefresh(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	r := New(Config{ID: 0, EarlyCert: true}, eng, fake)
	defer r.Crash()

	tx, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(setStmt, "mine", int64(3)); err != nil {
		t.Fatal(err)
	}
	// Certify assigns version 2 and, before the decision reaches the
	// origin, replays it through the refresh stream (exactly what a
	// resubscribe backfill does) — and holds the reply until the
	// drainer has installed it, forcing the lost-claim interleaving.
	fake.mu.Lock()
	fake.nextCommit = 2
	fake.onCertify = func(v, txnID uint64, ws *writeset.WriteSet) {
		fake.queue.push(certifier.Refresh{TxnID: txnID, Version: v, Origin: -1, WS: ws})
		deadline := time.Now().Add(5 * time.Second)
		for eng.Version() < v {
			if time.Now().After(deadline) {
				t.Error("backfilled refresh never applied")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	fake.mu.Unlock()

	res, err := tx.Commit(false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("commit version = %d, want 2", res.Version)
	}
	if got := readKV(t, r, 3); got != "mine" {
		t.Fatalf("kv[3] = %q, want %q", got, "mine")
	}
	if r.Version() != 2 {
		t.Fatalf("Vlocal = %d, want 2 (no double apply)", r.Version())
	}
	// A follow-up transaction works normally afterwards.
	tx2, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tx2.Abort()
	if tx2.Snapshot() != 2 {
		t.Fatalf("snapshot = %d, want 2", tx2.Snapshot())
	}
}

// TestEarlyCertKillMidBatch pins an active transaction against a
// conflict sitting in the MIDDLE of an in-flight batch: the refreshes
// left the reorder buffer when the drainer collected them, so only the
// applying-window scan can see them. The transaction's write statement
// must still die with ErrEarlyAbort.
func TestEarlyCertKillMidBatch(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	// A wide apply window so the statement reliably lands mid-batch.
	lat := latency.NewSource(latency.Model{ApplyWriteSet: 10 * time.Millisecond, Scale: 1}, 1)
	r := New(Config{ID: 0, EarlyCert: true, Latency: lat, DBSlots: 2}, eng, fake)
	defer r.Crash()

	tx, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Backlog [2..31]; the first collected batch is [2..9] (the whole
	// backlog is inserted under one lock hold, so the collector sees it
	// all and cuts at MaxApplyBatch). Version 5 — mid-first-batch —
	// writes key 7.
	var backlog []certifier.Refresh
	for v := uint64(2); v <= 31; v++ {
		k := int64(v % 5) // keys 0..4; never 7
		if v == 5 {
			k = 7
		}
		backlog = append(backlog, mkRefresh(t, eng, v, k, fmt.Sprintf("v%d", v)))
	}
	fake.queue.push(backlog...)

	// Wait until the drainer has the batch in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		applying := len(r.applying)
		r.mu.Unlock()
		if applying > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drainer never entered a batch apply")
		}
		time.Sleep(time.Millisecond)
	}

	// The write conflicts with version 5, which is neither queued nor
	// applied — it is mid-batch. Early certification must see it.
	_, execErr := tx.Exec(setStmt, "loser", int64(7))
	if execErr == nil {
		// The batch finished under us (slow CI machine): the conflict is
		// now applied, so early certification cannot fire — but the
		// write raced a refresh the engine already holds, and the commit
		// path must not succeed against a stale snapshot either way.
		t.Skip("apply window closed before the statement ran")
	}
	if !errors.Is(execErr, ErrEarlyAbort) {
		t.Fatalf("exec err = %v, want ErrEarlyAbort", execErr)
	}
	waitVersion(t, r, 31)
}
