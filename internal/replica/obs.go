package replica

import (
	"strconv"
	"sync"

	"sconrep/internal/obs"
)

// obsState holds a replica's live-observability instruments. It is nil
// until EnableObs; every hot-path hook is guarded by one atomic load
// and a nil check, so a replica without observability pays nothing.
type obsState struct {
	id     int
	traces *obs.TraceRecorder

	syncDelay     *obs.Histogram
	commits       *obs.Counter
	aborts        *obs.Counter
	earlyAborts   *obs.Counter
	certConflicts *obs.Counter
	// reorderWait times refreshes from reorder-buffer arrival to the
	// start of their group apply; applyBatch sizes the group-applied
	// batches (ObserveValue, unitless).
	reorderWait *obs.Histogram
	applyBatch  *obs.Histogram
	// applyParallelism records, per parallel-applied batch, the
	// achievable speedup batch/critical-path (ObserveValue, unitless);
	// applySerialFallbacks counts batches routed to the serial path
	// because their dependency graph was one pure chain.
	applyParallelism     *obs.Histogram
	applySerialFallbacks *obs.Counter

	// mu guards the gauge snapshots; the applier updates them from
	// inside the replica's apply critical section.
	// locks after Replica.mu
	mu sync.Mutex
	// tableVers tracks Vt per table for the table-version gauges.
	// guarded by mu
	tableVers map[string]uint64
}

// EnableObs registers this replica's metrics with reg and, when tr is
// non-nil, records a timeline trace for every finished transaction.
// Call once, before serving traffic. Metric labels carry the replica
// ID so multiple replicas share one registry (in-process clusters).
func (r *Replica) EnableObs(reg *obs.Registry, tr *obs.TraceRecorder) {
	if reg == nil || r.obs.Load() != nil {
		return
	}
	id := strconv.Itoa(r.cfg.ID)
	o := &obsState{id: r.cfg.ID, traces: tr, tableVers: make(map[string]uint64)}
	// Bootstrapped tables start at the engine's current version.
	for _, tab := range r.engine().Tables() {
		o.tableVers[tab] = r.engine().Version()
	}
	o.syncDelay = reg.Histogram("sconrep_sync_delay_seconds",
		"Synchronization start delay: wait until Vlocal reaches the transaction's minimum start version (the paper's Figure 6 series).",
		nil, "replica", id)
	o.commits = reg.Counter("sconrep_replica_commits_total",
		"Transactions committed on this replica.", "replica", id)
	o.aborts = reg.Counter("sconrep_replica_aborts_total",
		"Transactions aborted on this replica (all causes).", "replica", id)
	o.earlyAborts = reg.Counter("sconrep_replica_early_aborts_total",
		"Aborts by early certification against pending refresh writesets (§IV).", "replica", id)
	o.certConflicts = reg.Counter("sconrep_replica_cert_conflicts_total",
		"Aborts decided by the certifier (first-committer-wins conflicts).", "replica", id)
	o.reorderWait = reg.Histogram("sconrep_replica_reorder_wait_seconds",
		"Time refreshes spend in the reorder buffer between arrival and the start of their group apply.",
		nil, "replica", id)
	o.applyBatch = reg.Histogram("sconrep_replica_apply_batch_size",
		"Refreshes coalesced into one group-applied batch (bounded by MaxApplyBatch).",
		[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}, "replica", id)
	o.applyParallelism = reg.Histogram("sconrep_replica_apply_parallelism",
		"Per batch, the conflict graph's achievable speedup: batch size over critical-path length (1 = fully conflicting).",
		[]float64{1, 1.5, 2, 3, 4, 6, 8, 16, 32, 64}, "replica", id)
	o.applySerialFallbacks = reg.Counter("sconrep_replica_apply_serial_fallbacks_total",
		"Parallel-eligible batches routed to the serial path because their dependency graph was one pure chain.", "replica", id)
	reg.GaugeFunc("sconrep_replica_reorder_depth",
		"Refreshes held in the reorder buffer awaiting a contiguous run (plus the in-flight batch).",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.reorder) + len(r.applying))
		}, "replica", id)
	reg.GaugeFunc("sconrep_replica_applied_version",
		"Vlocal: the replica's latest applied commit version.",
		func() float64 { return float64(r.Version()) }, "replica", id)
	reg.GaugeFunc("sconrep_replica_refresh_queue_depth",
		"Refresh writesets received but not yet applied (mailbox + reorder buffer).",
		func() float64 { return float64(r.RefreshQueueDepth()) }, "replica", id)
	reg.GaugeFunc("sconrep_replica_active_txns",
		"In-flight client transactions (the load balancer's routing signal).",
		func() float64 { return float64(r.Active()) }, "replica", id)
	reg.GaugeFunc("sconrep_replica_applied_refreshes",
		"Refresh transactions committed by this replica.",
		func() float64 { return float64(r.AppliedRefreshes()) }, "replica", id)
	reg.GaugeFunc("sconrep_replica_crashed",
		"1 while the replica is detached (crashed), else 0.",
		func() float64 {
			if r.Crashed() {
				return 1
			}
			return 0
		}, "replica", id)
	reg.GaugeVecFunc("sconrep_replica_table_version",
		"Vt per table: the version of the last applied write to each table (fine-grained synchronization input).",
		"table", o.tableVersions, "replica", id)
	r.obs.Store(o)
}

// RefreshQueueDepth returns how many refresh writesets are queued but
// not yet applied: the certifier-mailbox backlog plus the reorder
// buffer — the replica's replication lag in transactions.
func (r *Replica) RefreshQueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.reorder) + len(r.applying)
	if r.sub != nil && !r.crashed {
		n += r.sub.QueueLen()
	}
	return n
}

// noteTables advances the per-table applied-version map.
func (o *obsState) noteTables(tables []string, v uint64) {
	o.mu.Lock()
	for _, tab := range tables {
		if v > o.tableVers[tab] {
			o.tableVers[tab] = v
		}
	}
	o.mu.Unlock()
}

// tableVersions is the scrape-time view for the table-version gauges.
func (o *obsState) tableVersions() map[string]float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]float64, len(o.tableVers))
	for tab, v := range o.tableVers {
		out[tab] = float64(v)
	}
	return out
}

// finish records the outcome counters and the transaction's timeline
// trace. Called exactly once per transaction, from abortInternal (the
// single finalization point), after the timer is stopped.
func (o *obsState) finish(t *Txn) {
	outcome := t.outcome
	if outcome == "" {
		outcome = "abort"
		o.aborts.Inc()
		if t.killed {
			o.earlyAborts.Inc()
		}
	} else {
		o.commits.Inc()
	}
	if o.traces == nil || t.timer == nil {
		return
	}
	spans := t.timer.Spans()
	if len(spans) == 0 {
		return
	}
	start := spans[0].Start
	stages := make([]obs.StageSpan, 0, len(spans))
	for _, sp := range spans {
		stages = append(stages, obs.StageSpan{
			Stage:      sp.Stage.String(),
			StartUs:    sp.Start.Sub(start).Microseconds(),
			DurationUs: sp.End.Sub(sp.Start).Microseconds(),
		})
	}
	o.traces.Record(obs.Trace{
		TxnID:         t.id,
		Replica:       o.id,
		Outcome:       outcome,
		ReadOnly:      t.readOnly,
		Snapshot:      t.stx.Snapshot(),
		CommitVersion: t.commitVersion,
		Start:         start,
		TotalUs:       spans[len(spans)-1].End.Sub(start).Microseconds(),
		Stages:        stages,
	})
}
