package replica

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/storage"
)

// TestParallelApplySameKeyAdjacentVersions drives the conflict-graph
// edge case deterministically: one collected batch holds same-key
// chains at adjacent versions interleaved with independent keys. The
// chains must apply in version order (the dependency edges), the
// independents in any order, and the final state must equal the serial
// oracle.
func TestParallelApplySameKeyAdjacentVersions(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	r := New(Config{ID: 0, EarlyCert: true, ApplyWorkers: 4, MaxApplyBatch: 32}, eng, fake)
	defer r.Crash()

	// Keys per version: chains 1-1-1 and 2-2 up front, key 1 again at
	// the tail, independents in between.
	keys := []int64{1, 1, 1, 2, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}
	oracle := map[int64]string{}
	var batch []certifier.Refresh
	for i, k := range keys {
		v := uint64(i + 2)
		val := fmt.Sprintf("v%d", v)
		batch = append(batch, mkRefresh(t, eng, v, k, val))
		oracle[k] = val
	}
	fake.queue.push(batch...)

	last := uint64(len(keys) + 1)
	waitVersion(t, r, last)
	for k, want := range oracle {
		if got := readKV(t, r, k); got != want {
			t.Fatalf("kv[%d] = %q, want %q", k, got, want)
		}
	}
	if got := r.AppliedRefreshes(); got != int64(len(keys)) {
		t.Fatalf("applied refreshes = %d, want %d", got, len(keys))
	}
}

// TestParallelApplySerialFallbackPureChain proves a fully-conflicting
// batch (every refresh writes the same key) is routed down the serial
// path and still lands correctly — the no-regression half of the
// parallel applier's contract.
func TestParallelApplySerialFallbackPureChain(t *testing.T) {
	eng := storage.NewEngine()
	loadKV(t, eng) // Vlocal = 1
	fake := newFakeCert()
	r := New(Config{ID: 0, EarlyCert: true, ApplyWorkers: 4, MaxApplyBatch: 32}, eng, fake)
	defer r.Crash()

	var batch []certifier.Refresh
	const last = uint64(17)
	for v := uint64(2); v <= last; v++ {
		batch = append(batch, mkRefresh(t, eng, v, 7, fmt.Sprintf("v%d", v)))
	}
	fake.queue.push(batch...)
	waitVersion(t, r, last)
	if got, want := readKV(t, r, 7), fmt.Sprintf("v%d", last); got != want {
		t.Fatalf("kv[7] = %q, want %q", got, want)
	}
	if got := r.AppliedRefreshes(); got != int64(last-1) {
		t.Fatalf("applied refreshes = %d, want %d", got, last-1)
	}
}

// parallelChaosSeeds are the default seeds for the randomized
// crash-mid-parallel-apply test; SCONREP_PARALLEL_SEED replays one.
var parallelChaosSeeds = []int64{1, 2, 3, 7, 11}

// TestParallelApplyCrashBetweenPublishes is the seed-replayable
// conflict-graph edge-case regression: a seeded workload over a hot
// keyspace (so same-key refreshes land at adjacent versions inside one
// parallel batch) is pushed in random chunks; the replica crashes at a
// random point — with the progressive watermark, that is between the
// publishes of an in-flight batch — and recovers through History. The
// final state must match the serial oracle exactly, with every version
// applied exactly once.
//
// Replay one schedule with SCONREP_PARALLEL_SEED=<seed>.
func TestParallelApplyCrashBetweenPublishes(t *testing.T) {
	seeds := parallelChaosSeeds
	if s := os.Getenv("SCONREP_PARALLEL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SCONREP_PARALLEL_SEED: %v", err)
		}
		seeds = []int64{v}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := storage.NewEngine()
			loadKV(t, eng) // Vlocal = 1
			fake := newFakeCert()
			r := New(Config{ID: 0, EarlyCert: true, ApplyWorkers: 4, MaxApplyBatch: 64}, eng, fake)
			defer r.Crash()

			const last = uint64(601)
			oracle := map[int64]string{}
			var backlog []certifier.Refresh
			for v := uint64(2); v <= last; v++ {
				k := int64(rng.Intn(10)) // hot keyspace: adjacent same-key versions are common
				val := fmt.Sprintf("s%d-v%d", seed, v)
				ref := mkRefresh(t, eng, v, k, val)
				backlog = append(backlog, ref)
				oracle[k] = val
				fake.mu.Lock()
				fake.history = append(fake.history, ref)
				fake.mu.Unlock()
			}

			crashAt := rng.Intn(len(backlog))
			pushed := 0
			crashed := false
			for pushed < len(backlog) {
				n := 1 + rng.Intn(40)
				if pushed+n > len(backlog) {
					n = len(backlog) - pushed
				}
				fake.mu.Lock()
				q := fake.queue
				fake.mu.Unlock()
				q.push(backlog[pushed : pushed+n]...)
				pushed += n
				if !crashed && pushed > crashAt {
					// Let the drainer get a batch in flight, then pull the
					// plug mid-apply: the watermark stops wherever the
					// contiguous installed prefix happened to be.
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					r.Crash()
					crashed = true
					if err := r.Recover(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !crashed {
				t.Fatal("crash point never reached")
			}

			waitVersion(t, r, last)
			if r.Version() != last {
				t.Fatalf("Vlocal = %d, want %d", r.Version(), last)
			}
			for k, want := range oracle {
				if got := readKV(t, r, k); got != want {
					t.Fatalf("seed %d: kv[%d] = %q, want %q (replay with SCONREP_PARALLEL_SEED=%d)",
						seed, k, got, want, seed)
				}
			}
			// Exactly-once accounting: a double apply would either panic
			// (version-order check) or inflate this counter.
			if got := r.AppliedRefreshes(); got != int64(last-1) {
				t.Fatalf("seed %d: applied refreshes = %d, want %d (replay with SCONREP_PARALLEL_SEED=%d)",
					seed, got, last-1, seed)
			}
		})
	}
}

// TestParallelMatchesSerial replays one seeded mixed workload through a
// parallel replica (ApplyWorkers=4) and a serial one (ApplyWorkers=1)
// and requires bit-identical final key/value state — the A/B
// equivalence the parallel path must preserve.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const last = uint64(301)
	type step struct {
		k   int64
		val string
	}
	steps := make([]step, 0, last-1)
	for v := uint64(2); v <= last; v++ {
		steps = append(steps, step{k: int64(rng.Intn(10)), val: fmt.Sprintf("v%d", v)})
	}

	run := func(workers int) *Replica {
		eng := storage.NewEngine()
		loadKV(t, eng)
		fake := newFakeCert()
		r := New(Config{ID: 0, EarlyCert: true, ApplyWorkers: workers, MaxApplyBatch: 64}, eng, fake)
		var batch []certifier.Refresh
		for i, s := range steps {
			batch = append(batch, mkRefresh(t, eng, uint64(i+2), s.k, s.val))
		}
		fake.queue.push(batch...)
		waitVersion(t, r, last)
		return r
	}
	par, ser := run(4), run(1)
	defer par.Crash()
	defer ser.Crash()
	for k := int64(0); k < 10; k++ {
		if p, s := readKV(t, par, k), readKV(t, ser, k); p != s {
			t.Fatalf("kv[%d] diverges: parallel %q vs serial %q", k, p, s)
		}
	}
	if par.Version() != ser.Version() {
		t.Fatalf("versions diverge: %d vs %d", par.Version(), ser.Version())
	}
}
