package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/metrics"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
)

// rig is a certifier plus n replicas sharing an identically loaded
// key/value schema.
type rig struct {
	cert     *certifier.Certifier
	replicas []*Replica
}

func newRig(t *testing.T, n int, earlyCert bool) *rig {
	t.Helper()
	cert := certifier.New()
	r := &rig{cert: cert}
	for i := 0; i < n; i++ {
		eng := storage.NewEngine()
		loadKV(t, eng)
		r.replicas = append(r.replicas, New(Config{ID: i, EarlyCert: earlyCert}, eng, Local(cert)))
	}
	if err := cert.StartAt(r.replicas[0].Version()); err != nil {
		t.Fatal(err)
	}
	return r
}

func loadKV(t *testing.T, eng *storage.Engine) {
	t.Helper()
	if err := kvBoot(eng); err != nil {
		t.Fatal(err)
	}
}

// kvBoot is loadKV as a deterministic bootstrap function — the form a
// durable backend replays on recovery from an empty data directory.
func kvBoot(eng *storage.Engine) error {
	err := eng.CreateTable(&storage.Schema{
		Table:   "kv",
		Columns: []storage.Column{{Name: "k", Type: storage.TInt}, {Name: "v", Type: storage.TString}},
		Key:     []string{"k"},
	})
	if err != nil {
		return err
	}
	tx := eng.Begin()
	for k := int64(0); k < 10; k++ {
		if err := tx.Insert("kv", []any{k, "init"}); err != nil {
			return err
		}
	}
	_, err = tx.CommitLocal()
	return err
}

func (r *rig) close() {
	for _, rep := range r.replicas {
		rep.Crash()
	}
}

var (
	getStmt, _ = sql.Prepare(`SELECT v FROM kv WHERE k = ?`)
	setStmt, _ = sql.Prepare(`UPDATE kv SET v = ? WHERE k = ?`)
)

// commitUpdate runs one update transaction on replica r.
func commitUpdate(t *testing.T, r *Replica, k int64, v string) CommitResult {
	t.Helper()
	tx, err := r.Begin(0, metrics.NewTxnTimer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(setStmt, v, k); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Commit(false)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// readKV reads key k at the replica's current state.
func readKV(t *testing.T, r *Replica, k int64) string {
	t.Helper()
	tx, err := r.Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	res, err := tx.Exec(getStmt, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("key %d: %d rows", k, len(res.Rows))
	}
	return res.Rows[0][0].(string)
}

// waitVersion fails the test if the replica does not reach v quickly.
func waitVersion(t *testing.T, r *Replica, v uint64) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- r.WaitVersion(v) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("replica %d stuck below version %d (at %d)", r.ID(), v, r.Version())
	}
}

func TestUpdatePropagatesToAllReplicas(t *testing.T) {
	rg := newRig(t, 3, true)
	defer rg.close()
	res := commitUpdate(t, rg.replicas[0], 1, "hello")
	if res.ReadOnly || len(res.WrittenTables) != 1 || res.WrittenTables[0] != "kv" {
		t.Fatalf("commit result = %+v", res)
	}
	for _, r := range rg.replicas {
		waitVersion(t, r, res.Version)
		if got := readKV(t, r, 1); got != "hello" {
			t.Fatalf("replica %d: kv[1] = %q", r.ID(), got)
		}
	}
	if rg.replicas[1].AppliedRefreshes() != 1 {
		t.Fatalf("replica 1 applied %d refreshes, want 1", rg.replicas[1].AppliedRefreshes())
	}
}

func TestReadOnlyCommitsLocally(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()
	certV := rg.cert.Version()
	tx, err := rg.replicas[0].Begin(0, metrics.NewTxnTimer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(getStmt, int64(1)); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Commit(false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReadOnly {
		t.Fatal("read-only txn not detected")
	}
	if rg.cert.Version() != certV {
		t.Fatal("read-only commit reached the certifier")
	}
}

func TestCertificationConflictAborts(t *testing.T) {
	rg := newRig(t, 2, false)
	defer rg.close()
	t0, err := rg.replicas[0].Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := rg.replicas[1].Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := t0.Exec(setStmt, "a", int64(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec(setStmt, "b", int64(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := t0.Commit(false); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Commit(false); !errors.Is(err, ErrCertifyConflict) {
		t.Fatalf("second committer err = %v, want ErrCertifyConflict", err)
	}
	// The system state must reflect only the winner, everywhere.
	for _, r := range rg.replicas {
		waitVersion(t, r, rg.cert.Version())
		if got := readKV(t, r, 5); got != "a" {
			t.Fatalf("replica %d: kv[5] = %q, want a", r.ID(), got)
		}
	}
}

func TestDisjointWritesBothCommit(t *testing.T) {
	rg := newRig(t, 2, false)
	defer rg.close()
	t0, _ := rg.replicas[0].Begin(0, nil)
	t1, _ := rg.replicas[1].Begin(0, nil)
	if _, err := t0.Exec(setStmt, "a", int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := t1.Exec(setStmt, "b", int64(2)); err != nil {
		t.Fatal(err)
	}
	r0, err := t0.Commit(false)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := t1.Commit(false)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Version == r1.Version {
		t.Fatal("distinct commits share a version")
	}
	for _, r := range rg.replicas {
		waitVersion(t, r, rg.cert.Version())
		if readKV(t, r, 1) != "a" || readKV(t, r, 2) != "b" {
			t.Fatalf("replica %d diverged", r.ID())
		}
	}
}

func TestBeginWaitsForMinVersion(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()
	res := commitUpdate(t, rg.replicas[0], 3, "new")

	// Replica 1 must reach res.Version before the txn starts; the read
	// must therefore see the update.
	timer := metrics.NewTxnTimer()
	tx, err := rg.replicas[1].Begin(res.Version, timer)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if tx.Snapshot() < res.Version {
		t.Fatalf("snapshot %d below required %d", tx.Snapshot(), res.Version)
	}
	r, err := tx.Exec(getStmt, int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].(string) != "new" {
		t.Fatalf("read %q after version wait", r.Rows[0][0])
	}
}

func TestEarlyCertificationStatementSide(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()

	// Open a txn on replica 1, then let a conflicting refresh arrive
	// before the txn's write statement.
	tx, err := rg.replicas[1].Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitUpdate(t, rg.replicas[0], 7, "winner")
	waitVersion(t, rg.replicas[1], rg.cert.Version())

	// The write statement conflicts with the (already applied) refresh;
	// applied refreshes no longer trigger early certification, but the
	// certifier will abort at commit. Either abort path is acceptable;
	// what is not acceptable is a successful commit.
	if _, err := tx.Exec(setStmt, "loser", int64(7)); err != nil {
		if !errors.Is(err, ErrEarlyAbort) {
			t.Fatalf("exec err = %v", err)
		}
		return
	}
	if _, err := tx.Commit(false); err == nil {
		t.Fatal("conflicting transaction committed")
	}
}

func TestEarlyCertificationRefreshSideKillsActive(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()

	// Txn on replica 1 writes key 8 (partial writeset registered).
	tx, err := rg.replicas[1].Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(setStmt, "local", int64(8)); err != nil {
		t.Fatal(err)
	}
	// A conflicting update commits elsewhere; its refresh should kill
	// the active transaction.
	commitUpdate(t, rg.replicas[0], 8, "remote")
	waitVersion(t, rg.replicas[1], rg.cert.Version())

	// The kill is detected on the next operation or commit.
	_, execErr := tx.Exec(getStmt, int64(8))
	if execErr == nil {
		if _, err := tx.Commit(false); err == nil {
			t.Fatal("killed transaction committed")
		}
		return
	}
	if !errors.Is(execErr, ErrEarlyAbort) {
		t.Fatalf("err = %v, want ErrEarlyAbort", execErr)
	}
}

func TestEarlyCertDisabledStillAbortsAtCertifier(t *testing.T) {
	rg := newRig(t, 2, false)
	defer rg.close()
	tx, _ := rg.replicas[1].Begin(0, nil)
	if _, err := tx.Exec(setStmt, "local", int64(8)); err != nil {
		t.Fatal(err)
	}
	commitUpdate(t, rg.replicas[0], 8, "remote")
	waitVersion(t, rg.replicas[1], rg.cert.Version())
	if _, err := tx.Exec(getStmt, int64(8)); err != nil {
		t.Fatalf("early cert disabled but exec aborted: %v", err)
	}
	if _, err := tx.Commit(false); !errors.Is(err, ErrCertifyConflict) {
		t.Fatalf("err = %v, want ErrCertifyConflict", err)
	}
}

func TestCommitOrderMatchesCertifier(t *testing.T) {
	// Many concurrent writers on distinct keys across two replicas:
	// every replica must converge to identical content.
	rg := newRig(t, 3, true)
	defer rg.close()
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rg.replicas[w%len(rg.replicas)]
			for i := 0; i < perWriter; i++ {
				k := int64(w*perWriter+i) % 10
				tx, err := r.Begin(0, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Exec(setStmt, fmt.Sprintf("w%d-%d", w, i), k); err != nil {
					tx.Abort()
					continue // early certification may abort; fine
				}
				if _, err := tx.Commit(false); err != nil {
					continue // certification conflicts are expected
				}
			}
		}(w)
	}
	wg.Wait()
	final := rg.cert.Version()
	for _, r := range rg.replicas {
		waitVersion(t, r, final)
	}
	// All replicas identical.
	base := rg.replicas[0].Engine()
	btx := base.Begin()
	want, _ := btx.ScanAll("kv")
	for _, r := range rg.replicas[1:] {
		rtx := r.Engine().Begin()
		got, _ := rtx.ScanAll("kv")
		if len(got) != len(want) {
			t.Fatalf("replica %d row count %d != %d", r.ID(), len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Row[1] != want[i].Row[1] {
				t.Fatalf("replica %d diverged at %q: %v vs %v", r.ID(), want[i].Key, got[i].Row, want[i].Row)
			}
		}
	}
}

func TestEagerCommitWaitsForAllReplicas(t *testing.T) {
	cert := certifier.New(certifier.WithEager())
	rg := &rig{cert: cert}
	for i := 0; i < 3; i++ {
		eng := storage.NewEngine()
		loadKV(t, eng)
		rg.replicas = append(rg.replicas, New(Config{ID: i, EarlyCert: true}, eng, Local(cert)))
	}
	if err := cert.StartAt(rg.replicas[0].Version()); err != nil {
		t.Fatal(err)
	}
	defer rg.close()

	tx, _ := rg.replicas[0].Begin(0, metrics.NewTxnTimer())
	if _, err := tx.Exec(setStmt, "eager", int64(0)); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Commit(true)
	if err != nil {
		t.Fatal(err)
	}
	// The defining property: at ack time, EVERY replica has the commit.
	for _, r := range rg.replicas {
		if r.Version() < res.Version {
			t.Fatalf("eager ack before replica %d applied (at %d, want %d)", r.ID(), r.Version(), res.Version)
		}
	}
}

func TestCrashRecoveryCatchUp(t *testing.T) {
	rg := newRig(t, 3, true)
	defer rg.close()

	commitUpdate(t, rg.replicas[0], 1, "before")
	for _, r := range rg.replicas {
		waitVersion(t, r, rg.cert.Version())
	}
	rg.replicas[2].Crash()
	if !rg.replicas[2].Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	// Progress while replica 2 is down.
	for i := 0; i < 5; i++ {
		commitUpdate(t, rg.replicas[i%2], int64(i), fmt.Sprintf("during-%d", i))
	}
	// Transactions on the crashed replica fail.
	if _, err := rg.replicas[2].Begin(0, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin on crashed replica: %v", err)
	}

	if err := rg.replicas[2].Recover(); err != nil {
		t.Fatal(err)
	}
	waitVersion(t, rg.replicas[2], rg.cert.Version())
	for k := int64(0); k < 5; k++ {
		want := readKV(t, rg.replicas[0], k)
		if got := readKV(t, rg.replicas[2], k); got != want {
			t.Fatalf("after recovery kv[%d] = %q, want %q", k, got, want)
		}
	}
	// And it continues to receive new refreshes.
	res := commitUpdate(t, rg.replicas[0], 9, "after")
	waitVersion(t, rg.replicas[2], res.Version)
	if got := readKV(t, rg.replicas[2], 9); got != "after" {
		t.Fatalf("post-recovery refresh lost: %q", got)
	}
}

func TestCrashKillsActiveTxns(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()
	tx, err := rg.replicas[0].Begin(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rg.replicas[0].Crash()
	if _, err := tx.Exec(getStmt, int64(1)); err == nil {
		t.Fatal("exec succeeded on crashed replica")
	}
}

func TestRecoverOnLiveReplicaFails(t *testing.T) {
	rg := newRig(t, 1, true)
	defer rg.close()
	if err := rg.replicas[0].Recover(); err == nil {
		t.Fatal("Recover on live replica succeeded")
	}
}

func TestTimerStages(t *testing.T) {
	rg := newRig(t, 2, true)
	defer rg.close()
	timer := metrics.NewTxnTimer()
	tx, err := rg.replicas[0].Begin(0, timer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(setStmt, "x", int64(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(false); err != nil {
		t.Fatal(err)
	}
	// Queries, certify, and commit stages must have been entered.
	if timer.Stage(metrics.StageQueries) <= 0 {
		t.Error("queries stage empty")
	}
	if timer.Stage(metrics.StageCommit) <= 0 {
		t.Error("commit stage empty")
	}
	if timer.Stage(metrics.StageGlobal) != 0 {
		t.Error("global stage nonzero for lazy commit")
	}
}

func TestActiveCount(t *testing.T) {
	rg := newRig(t, 1, true)
	defer rg.close()
	r := rg.replicas[0]
	if r.Active() != 0 {
		t.Fatalf("initial active = %d", r.Active())
	}
	tx, _ := r.Begin(0, nil)
	if r.Active() != 1 {
		t.Fatalf("active = %d, want 1", r.Active())
	}
	tx.Abort()
	if r.Active() != 0 {
		t.Fatalf("active after abort = %d", r.Active())
	}
	// Double abort must not underflow.
	tx.Abort()
	if r.Active() != 0 {
		t.Fatalf("active after double abort = %d", r.Active())
	}
}
