package replica

import (
	"fmt"
	"testing"

	"sconrep/internal/certifier"
	"sconrep/internal/metrics"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/sql"
)

// BenchmarkTraceOverhead measures the full client commit path —
// Begin, one UPDATE, Commit through a local certifier, refresh apply —
// with the distributed tracer disabled (the production default: every
// hook is one atomic load and a nil check) and enabled (spans minted
// at the replica, certifier, and refresh layers). The disabled
// configuration is the regression guard: it must track the pre-tracing
// hot path within noise.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		tracing bool
	}{
		{"disabled", false},
		{"enabled", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := benchEngine(b)
			cert := certifier.New()
			r := New(Config{ID: 0}, eng, Local(cert))
			defer r.Crash()
			if err := cert.StartAt(eng.Version()); err != nil {
				b.Fatal(err)
			}
			var tr *dtrace.Tracer
			if mode.tracing {
				coll := dtrace.NewCollector(4096)
				tr = dtrace.New("bench-client", coll)
				r.EnableTracing(dtrace.New("bench-replica", coll))
				cert.EnableTracing(dtrace.New("bench-certifier", coll))
			}
			p, err := sql.Prepare(`UPDATE kv SET v = ? WHERE k = ?`)
			if err != nil {
				b.Fatal(err)
			}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				root := tr.StartRoot("client.txn")
				tx, err := r.BeginCtx(0, metrics.NewTxnTimer(), root.Context())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Exec(p, fmt.Sprintf("v%d", i), int64(i%10)); err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Commit(false); err != nil {
					b.Fatal(err)
				}
				root.End()
			}
		})
	}
}
