// Package replica implements one database replica: the proxy of §IV
// plus its embedded DBMS (the storage engine). The proxy
//
//   - delays transaction start until the replica reaches the version
//     the consistency mode demands (synchronization start delay);
//   - executes SQL statements against the local snapshot;
//   - performs early certification: an update statement that conflicts
//     with a pending (received but not yet applied) refresh writeset
//     aborts immediately, and an arriving refresh aborts conflicting
//     active local transactions — the hidden-deadlock prevention of
//     §IV applied to a multiversion engine, where it avoids certainly-
//     futile certification round trips;
//   - routes update commits through the certifier and commits local
//     and refresh transactions in the certifier's global order;
//   - applies refresh writesets sequentially through a reorder buffer
//     (the certifier may deliver out of version order);
//   - supports crash (detach, keep durable state) and recovery
//     (reattach, catch up from the certifier's history).
package replica

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sconrep/internal/certifier"
	"sconrep/internal/latency"
	"sconrep/internal/metrics"
	"sconrep/internal/obs/dtrace"
	"sconrep/internal/sql"
	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// Errors surfaced to clients.
var (
	// ErrCertifyConflict is a certification abort: the transaction's
	// writeset conflicted with a concurrently committed transaction.
	ErrCertifyConflict = errors.New("replica: certification conflict, transaction aborted")
	// ErrEarlyAbort is an early-certification abort: the transaction
	// wrote a record that a pending refresh writeset also writes.
	ErrEarlyAbort = errors.New("replica: aborted by early certification against pending refresh")
	// ErrCrashed is returned while the replica is crashed.
	ErrCrashed = errors.New("replica: crashed")
	// ErrTxnDone is returned for operations on a finished transaction.
	ErrTxnDone = errors.New("replica: transaction finished")
)

// CertService is the certifier as seen by a replica: local
// (certifier.Certifier via Local) or remote (wire.CertClient).
type CertService interface {
	// Certify submits an update transaction's writeset for
	// certification. sc is the committing span's context (zero when
	// tracing is off); remote implementations ship it on the wire.
	Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, sc dtrace.SpanContext) (certifier.Decision, error)
	// Subscribe attaches the replica to the refresh stream.
	Subscribe(replicaID int) RefreshSource
	// Unsubscribe detaches it (crash).
	Unsubscribe(replicaID int)
	// Applied acknowledges that the replica applied version v.
	Applied(replicaID int, v uint64)
	// GlobalCommitted returns a channel closed when every replica has
	// applied v (eager mode).
	GlobalCommitted(v uint64) <-chan struct{}
	// History returns one version-ordered page of refreshes with
	// versions greater than after, for recovery catch-up. A page is
	// capped (certifier.MaxHistoryBatch) and may end early at a version
	// still being certified; callers loop until an empty page and rely
	// on their live subscription for the raced tail.
	History(after uint64) []certifier.Refresh
}

// RefreshSource is one replica's view of its refresh stream.
type RefreshSource interface {
	// Take blocks for the next batch; ok is false once detached.
	Take() ([]certifier.Refresh, bool)
	// Pending peeks at queued refreshes (early certification).
	Pending() []certifier.Refresh
	// QueueLen returns the number of queued refreshes.
	QueueLen() int
}

// localCert adapts *certifier.Certifier to CertService (the Subscribe
// return type differs). shards restricts the refresh subscription to
// the given shard set (nil = all).
type localCert struct {
	c      *certifier.Certifier
	shards []int
}

func (l localCert) Certify(origin int, txnID, snapshot uint64, ws *writeset.WriteSet, sc dtrace.SpanContext) (certifier.Decision, error) {
	return l.c.CertifyCtx(origin, txnID, snapshot, ws, sc)
}
func (l localCert) Subscribe(id int) RefreshSource           { return l.c.SubscribeShards(id, l.shards) }
func (l localCert) Unsubscribe(id int)                       { l.c.Unsubscribe(id) }
func (l localCert) Applied(id int, v uint64)                 { l.c.Applied(id, v) }
func (l localCert) GlobalCommitted(v uint64) <-chan struct{} { return l.c.GlobalCommitted(v) }
func (l localCert) History(after uint64) []certifier.Refresh { return l.c.History(after) }

// Local wraps an in-process certifier as a CertService.
func Local(c *certifier.Certifier) CertService { return localCert{c: c} }

// LocalShards wraps an in-process certifier as a CertService whose
// refresh subscription covers only the given shards: versions
// certified entirely on other shards arrive as skip markers and the
// replica advances past them without row data.
func LocalShards(c *certifier.Certifier, shards []int) CertService {
	return localCert{c: c, shards: shards}
}

// Config holds replica construction parameters.
type Config struct {
	ID int
	// EarlyCert enables early certification (on by default in the
	// paper's prototype; the ablation bench turns it off).
	EarlyCert bool
	// Latency is the simulated cost source for this replica. Nil means
	// no injected delays.
	Latency *latency.Source
	// DBSlots is the embedded DBMS's execution concurrency: statement
	// execution, local commits, and refresh application contend for
	// these slots, exactly as they contend for the standalone DBMS's
	// resources in the paper's testbed (dual-core servers → default 2).
	// The contention is what makes busy replicas lag — the effect the
	// eager mode's slowest-replica wait amplifies and the lazy modes'
	// least-loaded routing sidesteps.
	DBSlots int
	// MaxApplyBatch bounds one group-applied refresh batch (default 8).
	// Larger batches amortize the apply cost further, but only the tail
	// version of a batch is published, so a transaction waiting for a
	// mid-batch version waits for the whole batch; an unbounded batch
	// on a deep backlog would erase the fine-grained mode's start-delay
	// advantage over the coarse one. Same trade-off, and same fix, as
	// bounding a group commit.
	//
	// With ApplyWorkers > 1 the parallel applier publishes versions
	// progressively (each version becomes visible as soon as its
	// contiguous prefix is installed), which removes the tail-only-
	// publication penalty and makes larger batches safe to run wide.
	MaxApplyBatch int
	// ApplyWorkers is the width of the conflict-aware parallel refresh
	// applier: how many goroutines may install writesets from one
	// group-applied batch into the engine concurrently (default 4).
	// The batch's dependency graph (writeset.NewConflictGraph) keeps
	// conflicting writesets ordered, and versions publish strictly in
	// order regardless of install interleaving. 1 restores the serial
	// single-critical-section batch path of PR 4.
	ApplyWorkers int
}

// Replica is one proxy + DBMS pair.
type Replica struct {
	cfg Config
	// eng is the MVCC engine. It is a pointer slot, not a plain field,
	// because disk-restart recovery (RecoverFrom) swaps in the engine
	// rebuilt from checkpoint + WAL while stale goroutines from the
	// crashed incarnation may still be reading it.
	eng  atomic.Pointer[storage.Engine]
	cert CertService
	lat  *latency.Source

	mu   sync.Mutex
	cond *sync.Cond
	// dur is the durable backend: every applied run — refresh batches
	// and local commits alike — is reported to it after the engine
	// apply. Captured under mu so a batch in flight across a crash
	// keeps logging to the store it started with (which a disk restart
	// has abandoned — those appends no-op) rather than corrupting the
	// replacement's sequencing.
	// guarded by mu
	dur storage.Backend
	// sub is the live certifier subscription.
	// guarded by mu
	sub RefreshSource
	// reorder buffers out-of-order refreshes by version.
	// guarded by mu
	reorder map[uint64]certifier.Refresh
	// applying is the batch the drainer is currently group-applying.
	// Entries leave the reorder buffer before they reach the engine, so
	// statement-side early certification must scan this window too or a
	// write racing the apply would miss a certain conflict.
	// guarded by mu
	applying []certifier.Refresh
	// committing marks versions owned by in-flight local commits so
	// the applier does not wait for a refresh that will never arrive.
	// guarded by mu
	committing map[uint64]bool
	// actives indexes in-flight client transactions by id.
	// guarded by mu
	actives map[uint64]*Txn
	// crashed marks the replica detached.
	// guarded by mu
	crashed bool
	// applierGen invalidates stale applier/drainer goroutines.
	// guarded by mu
	applierGen int
	// acks coalesces apply acknowledgments for the notifier goroutine;
	// replaced on every attach.
	// guarded by mu
	acks *ackBox
	// benchPerWriteset restores the pre-batching hot path (one slot
	// acquisition, engine commit, ack goroutine, and broadcast per
	// refresh). Benchmark baseline only — see BenchmarkRefreshApply.
	benchPerWriteset bool
	// minServe is the recovery catch-up floor: the highest version the
	// certifier had assigned when this replica last recovered. Commits
	// up to it may already be acknowledged to clients, so transactions
	// — even ESC ones, whose MinVersion is 0 — must not start below it.
	// guarded by mu
	minServe uint64

	// gb recycles conflict-graph builder state across group-applied
	// batches. Accessed only from inside the applying window (at most
	// one batch is inside the engine at a time), which serializes it.
	gb writeset.GraphBuilder
	// wssBuf recycles the per-batch writeset slice; same serialization
	// as gb (built under mu while the applying window is empty, used
	// until the batch completes).
	wssBuf []*writeset.WriteSet
	// stripes recycles the striped applier's per-batch state; same
	// serialization as gb.
	stripes stripeScratch

	slots chan struct{}

	nextTxnID atomic.Uint64
	active    atomic.Int64
	// appliedRefreshes counts refresh transactions committed, for
	// observability and tests.
	appliedRefreshes atomic.Int64
	// obs is the live-observability state; nil (one atomic load on hot
	// paths) until EnableObs.
	obs atomic.Pointer[obsState]
	// tracer mints distributed-tracing spans; nil (one atomic load and
	// a nil check on hot paths) until EnableTracing.
	tracer atomic.Pointer[dtrace.Tracer]
	// readStartCB observes each transaction's synchronization start
	// delay; the cluster layer labels it with the consistency mode the
	// replica itself does not know. Nil until OnReadStartDelay.
	readStartCB atomic.Pointer[func(time.Duration)]
	// arrived timestamps reorder-buffer entries for the wait histogram.
	// Populated only while obs is enabled.
	// guarded by mu
	arrived map[uint64]time.Time
}

// EnableTracing attaches the distributed tracer: transactions then
// record replica.txn/replica.exec/replica.commit spans and refresh
// applies record refresh.apply spans parented under the certification
// that shipped them. Call before traffic; a nil store disables again.
func (r *Replica) EnableTracing(tr *dtrace.Tracer) { r.tracer.Store(tr) }

// OnReadStartDelay installs a callback observing every transaction's
// synchronization start delay (the wait for Vlocal to reach the
// required version). The cluster layer uses it to feed the per-mode
// read-start-delay histograms. Call before traffic; nil disables.
func (r *Replica) OnReadStartDelay(fn func(time.Duration)) {
	if fn == nil {
		r.readStartCB.Store(nil)
		return
	}
	r.readStartCB.Store(&fn)
}

// New creates a replica around an existing engine (already loaded with
// the initial database) and attaches it to the certification service.
// Durability is the paper's default: none — a restarted replica
// rebuilds from the certifier's history.
func New(cfg Config, eng *storage.Engine, cert CertService) *Replica {
	return newReplica(cfg, storage.MemBackend{Eng: eng}, cert)
}

// NewWithBackend creates a replica around a pluggable storage backend.
// The engine comes from the backend — typically already recovered from
// checkpoint + WAL — and every applied run is logged back to it, so a
// future restart replays only the history suffix the backend missed.
func NewWithBackend(cfg Config, b storage.Backend, cert CertService) *Replica {
	return newReplica(cfg, b, cert)
}

func newReplica(cfg Config, b storage.Backend, cert CertService) *Replica {
	if cfg.DBSlots <= 0 {
		cfg.DBSlots = 2
	}
	if cfg.MaxApplyBatch <= 0 {
		cfg.MaxApplyBatch = 8
	}
	if cfg.ApplyWorkers <= 0 {
		cfg.ApplyWorkers = 4
	}
	r := &Replica{
		cfg:        cfg,
		dur:        b,
		cert:       cert,
		lat:        cfg.Latency,
		reorder:    make(map[uint64]certifier.Refresh),
		committing: make(map[uint64]bool),
		actives:    make(map[uint64]*Txn),
		slots:      make(chan struct{}, cfg.DBSlots),
		arrived:    make(map[uint64]time.Time),
	}
	r.eng.Store(b.Engine())
	r.cond = sync.NewCond(&r.mu)
	r.attach()
	return r
}

// engine returns the current MVCC engine. The slot is swapped only by
// RecoverFrom, and only while the replica is crashed.
func (r *Replica) engine() *storage.Engine { return r.eng.Load() }

// withSlot runs fn holding one DBMS execution slot. Callers must not
// hold r.mu.
func (r *Replica) withSlot(fn func()) {
	r.slots <- struct{}{}
	fn()
	<-r.slots
}

// ID returns the replica's identifier.
func (r *Replica) ID() int { return r.cfg.ID }

// Engine exposes the embedded storage engine (tests, data loading).
func (r *Replica) Engine() *storage.Engine { return r.engine() }

// Version returns the replica's Vlocal.
func (r *Replica) Version() uint64 { return r.engine().Version() }

// Active returns the number of in-flight client transactions — the
// load balancer's routing signal.
func (r *Replica) Active() int { return int(r.active.Load()) }

// AppliedRefreshes returns how many refresh transactions this replica
// has committed.
func (r *Replica) AppliedRefreshes() int64 { return r.appliedRefreshes.Load() }

// attach subscribes to the certifier and starts the refresh applier.
// Caller must not hold r.mu.
func (r *Replica) attach() {
	r.mu.Lock()
	r.sub = r.cert.Subscribe(r.cfg.ID)
	r.crashed = false
	r.applierGen++
	gen := r.applierGen
	sub := r.sub
	r.acks = newAckBox()
	acks := r.acks
	r.mu.Unlock()
	go r.applier(sub, gen)
	go r.drainer(gen)
	go r.notifier(acks)
}

// notifier ships apply acknowledgments to the certifier, coalesced to
// the highest applied version (the certifier's accounting is
// cumulative). One goroutine per attachment: a 1000-refresh catch-up
// posts to the box 1000 times but spawns nothing and sends only as
// many acks as the network hop can drain.
func (r *Replica) notifier(acks *ackBox) {
	for {
		v, ok := acks.next()
		if !ok {
			return
		}
		// The commit notification (eager accounting, §IV-D) travels one
		// network hop; it runs here so it never stalls the drainer.
		if r.lat != nil {
			r.lat.NetworkHop()
		}
		r.cert.Applied(r.cfg.ID, v)
	}
}

// applier receives refresh batches from the certifier, performs the
// refresh side of early certification, stores them in the reorder
// buffer, and wakes the drainer. Reception is deliberately cheap: the
// paper's proxy queues refresh writesets as they arrive and applies
// them sequentially in the background.
func (r *Replica) applier(sub RefreshSource, gen int) {
	for {
		batch, ok := sub.Take()
		if !ok {
			return
		}
		r.mu.Lock()
		if r.applierGen != gen {
			r.mu.Unlock()
			return
		}
		o := r.obs.Load()
		for _, ref := range batch {
			// A nil writeset is a skip marker: the version committed
			// entirely on shards this replica does not subscribe to.
			// Substitute an empty writeset so the whole apply path —
			// reorder, batching, durability logging, acks — advances the
			// version without touching a row.
			if ref.WS == nil {
				ref.WS = &writeset.WriteSet{}
			}
			if ref.Version > r.engine().Version() {
				r.reorder[ref.Version] = ref
				if o != nil {
					r.arrived[ref.Version] = time.Now()
				}
			}
			if r.cfg.EarlyCert {
				r.abortConflictingActivesLocked(ref.WS)
			}
		}
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// drainer sequentially applies queued refresh transactions in
// certifier order — the proxy's refresh handler. It competes for DBMS
// slots with client statements, so a replica busy serving queries
// falls behind, exactly like the paper's standalone DBMS.
func (r *Replica) drainer(gen int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.crashed || r.applierGen != gen {
			return
		}
		if !r.applyReadyLocked() {
			r.cond.Wait()
		}
	}
}

// abortConflictingActivesLocked marks active local update transactions
// whose partial writesets conflict with an incoming refresh.
func (r *Replica) abortConflictingActivesLocked(ws *writeset.WriteSet) {
	for _, tx := range r.actives {
		if tx.partial != nil && !tx.killed && tx.partial.ConflictsWith(ws) {
			tx.killed = true
		}
	}
}

// applyReadyLocked group-applies reorder-buffer entries contiguous
// with Vlocal and reports whether it applied anything. Each round
// coalesces the longest run of queued refreshes — stopping at a
// version owned by an in-flight local commit, and bounded by
// Config.MaxApplyBatch — into ONE batch applied
// under a single DBMS slot and a single engine critical section, with
// one amortized latency charge, one coalesced apply acknowledgment,
// and one broadcast. Only the batch's tail version is published, so
// no intermediate version is observable before its predecessors and
// Vlocal stays monotonic.
//
// r.mu is temporarily released around the (slow) apply itself so
// statements on other transactions proceed concurrently; entries are
// removed from the reorder buffer under the lock (and parked in
// r.applying for early certification), so concurrent callers never
// double-apply.
func (r *Replica) applyReadyLocked() bool {
	progress := false
	for {
		// At most one batch may be inside the engine at a time. Without
		// this guard a recovery backfill could start applying while the
		// previous generation's drainer still has a batch in flight
		// (Crash does not wait for it), and the loser of that race would
		// see ErrBadVersion — a double apply. The in-flight batch
		// broadcasts when it completes, re-waking this caller.
		if len(r.applying) > 0 {
			return progress
		}
		start := r.engine().Version() + 1
		// Drop entries a completed batch has already covered: a refresh
		// or a history backfill admitted against a pre-apply Vlocal can
		// land below the published tail and would otherwise pin its
		// writeset in the reorder buffer forever.
		for v := range r.reorder {
			if v < start {
				delete(r.reorder, v)
			}
		}
		// Pre-size to the group bound (capped by what is buffered): the
		// batch escapes into r.applying, so growth by append would pay
		// log2(n) reallocations per drained backlog.
		hint := r.cfg.MaxApplyBatch
		if hint > len(r.reorder) {
			hint = len(r.reorder)
		}
		if r.benchPerWriteset {
			hint = 1
		}
		batch := make([]certifier.Refresh, 0, hint)
		for v := start; ; v++ {
			if r.committing[v] {
				break // a local commit owns this version
			}
			ref, ok := r.reorder[v]
			if !ok {
				break
			}
			delete(r.reorder, v)
			batch = append(batch, ref)
			if r.benchPerWriteset {
				break // baseline: one writeset per slot cycle
			}
			if len(batch) >= r.cfg.MaxApplyBatch {
				break // bounded group: see Config.MaxApplyBatch
			}
		}
		if len(batch) == 0 {
			return progress
		}
		if o := r.obs.Load(); o != nil {
			now := time.Now()
			for i := range batch {
				if at, ok := r.arrived[batch[i].Version]; ok {
					o.reorderWait.Observe(now.Sub(at))
					delete(r.arrived, batch[i].Version)
				}
			}
			o.applyBatch.ObserveValue(float64(len(batch)))
		}
		wss := r.wssBuf[:0]
		for i := range batch {
			wss = append(wss, batch[i].WS)
		}
		r.wssBuf = wss[:0]
		last := batch[len(batch)-1].Version
		var spans []*dtrace.ActiveSpan
		if tr := r.tracer.Load(); tr != nil {
			spans = r.startApplySpans(tr, batch)
		}
		dur := r.dur
		r.applying = batch
		r.mu.Unlock()
		var err error
		var counted bool
		r.withSlot(func() {
			if r.lat != nil {
				if r.benchPerWriteset {
					r.lat.ApplyWriteSet()
				} else {
					r.lat.ApplyWriteSetBatch(len(batch))
				}
			}
			// The conflict-aware pool models the DBMS's intra-operation
			// parallelism, so the whole batch still costs one DBMS slot
			// and one amortized latency charge, exactly like the serial
			// batch path it replaces. It owns the AppliedRefreshes
			// accounting too, so a progressively published version never
			// becomes visible before its refreshes are counted.
			if r.cfg.ApplyWorkers > 1 && len(wss) > 1 && !r.benchPerWriteset {
				counted = true
				err = r.applyBatchParallel(wss, start)
			} else {
				err = r.engine().ApplyWriteSetBatch(wss, start)
			}
		})
		if err == nil {
			// Durable logging is non-forced and advisory (the certifier
			// is the durability authority; a lost tail is backfilled on
			// recovery), so it runs outside r.mu and after the engine
			// apply. wss stays ours until r.applying clears: the backend
			// copies anything it parks.
			_ = dur.LogApplied(wss, start)
		}
		r.mu.Lock()
		r.applying = nil
		for _, sp := range spans {
			sp.End()
		}
		if err != nil {
			// Ordering is enforced by construction; an apply failure
			// here means state divergence, which must be loud.
			panic(fmt.Sprintf("replica %d: refresh apply at %d..%d: %v", r.cfg.ID, start, last, err))
		}
		progress = true
		if !counted {
			r.appliedRefreshes.Add(int64(len(batch)))
		}
		if o := r.obs.Load(); o != nil {
			for i := range batch {
				o.noteTables(batch[i].WS.Tables(), batch[i].Version)
			}
		}
		if r.benchPerWriteset {
			// Baseline: the pre-batching per-refresh ack goroutine.
			go func(v uint64) {
				if r.lat != nil {
					r.lat.NetworkHop()
				}
				r.cert.Applied(r.cfg.ID, v)
			}(last)
		} else if r.acks != nil {
			r.acks.post(last)
		}
		r.cond.Broadcast()
	}
}

// startApplySpans mints one refresh.apply span per coalesced commit,
// each parented under the certification that shipped it and linked to
// the other members of the group-applied batch. Kept out of the apply
// loop so the untraced hot path does not carry this body's code.
func (r *Replica) startApplySpans(tr *dtrace.Tracer, batch []certifier.Refresh) []*dtrace.ActiveSpan {
	spans := make([]*dtrace.ActiveSpan, len(batch))
	id := strconv.Itoa(r.cfg.ID)
	size := strconv.Itoa(len(batch))
	for i := range batch {
		parent := dtrace.SpanContext{}
		if ws := batch[i].WS; ws != nil && ws.Trace != nil {
			parent = *ws.Trace
		}
		sp := tr.StartSpan("refresh.apply", parent)
		sp.SetAttr("replica", id)
		sp.SetAttr("batch", size)
		sp.SetAttr("version", strconv.FormatUint(batch[i].Version, 10))
		for j := range batch {
			if j != i && batch[j].WS != nil && batch[j].WS.Trace != nil {
				sp.Link(*batch[j].WS.Trace)
			}
		}
		spans[i] = sp
	}
	return spans
}

// WaitVersion blocks until Vlocal ≥ v (the synchronization start
// delay) or the replica crashes.
func (r *Replica) WaitVersion(v uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.engine().Version() < v {
		if r.crashed {
			return ErrCrashed
		}
		r.cond.Wait()
	}
	return nil
}

// Txn is one client transaction executing on this replica.
type Txn struct {
	r       *Replica
	id      uint64
	stx     *storage.Txn
	timer   *metrics.TxnTimer
	killed  bool // set by early certification
	done    bool
	partial *writeset.WriteSet // updated after each write statement
	// touched accumulates the table-sets of executed statements — the
	// transaction's observed read set, reported to the history checker.
	touched map[string]bool
	// outcome/commitVersion/readOnly feed the trace recorder; outcome
	// stays "" (recorded as abort) unless Commit succeeds.
	outcome       string
	commitVersion uint64
	readOnly      bool
	// span is the transaction's replica.txn span (nil when tracing is
	// off); ended in abortInternal, the single finalization point.
	span *dtrace.ActiveSpan
}

// TraceContext returns the transaction's replica.txn span context
// (zero when tracing is off).
func (t *Txn) TraceContext() dtrace.SpanContext { return t.span.Context() }

// Begin starts a client transaction once the replica has reached
// minVersion. The timer's Version stage covers the wait.
func (r *Replica) Begin(minVersion uint64, timer *metrics.TxnTimer) (*Txn, error) {
	return r.BeginCtx(minVersion, timer, dtrace.SpanContext{})
}

// BeginCtx is Begin carrying the caller's span context: the
// transaction records a replica.txn span (with a replica.version_wait
// child covering the synchronization start delay) parented under sc.
func (r *Replica) BeginCtx(minVersion uint64, timer *metrics.TxnTimer, sc dtrace.SpanContext) (*Txn, error) {
	if timer != nil {
		timer.Start(metrics.StageVersion)
	}
	r.mu.Lock()
	if r.minServe > minVersion {
		minVersion = r.minServe
	}
	r.mu.Unlock()
	span := r.tracer.Load().StartSpan("replica.txn", sc)
	span.SetAttr("replica", strconv.Itoa(r.cfg.ID))
	span.SetAttr("min_version", strconv.FormatUint(minVersion, 10))
	waitSpan := r.tracer.Load().StartSpan("replica.version_wait", span.Context())
	o := r.obs.Load()
	cb := r.readStartCB.Load()
	var waitStart time.Time
	if o != nil || cb != nil {
		waitStart = time.Now()
	}
	err := r.WaitVersion(minVersion)
	waitSpan.End()
	if err != nil {
		span.SetAttr("outcome", "crashed")
		span.End()
		return nil, err
	}
	if o != nil || cb != nil {
		d := time.Since(waitStart)
		if o != nil {
			o.syncDelay.Observe(d)
		}
		if cb != nil {
			(*cb)(d)
		}
	}
	tx := &Txn{
		r:       r,
		id:      r.nextTxnID.Add(1),
		timer:   timer,
		touched: make(map[string]bool),
		span:    span,
	}
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		span.SetAttr("outcome", "crashed")
		span.End()
		return nil, ErrCrashed
	}
	tx.stx = r.engine().Begin()
	r.actives[tx.id] = tx
	r.mu.Unlock()
	r.active.Add(1)
	if timer != nil {
		timer.Start(metrics.StageQueries)
	}
	return tx, nil
}

// Snapshot returns the version this transaction reads.
func (t *Txn) Snapshot() uint64 { return t.stx.Snapshot() }

// Touched returns the tables accessed by executed statements so far
// (reads and writes).
func (t *Txn) Touched() []string {
	out := make([]string, 0, len(t.touched))
	for tab := range t.touched {
		out = append(out, tab)
	}
	return out
}

// checkAlive returns the error state of the transaction, if any.
func (t *Txn) checkAlive() error {
	t.r.mu.Lock()
	defer t.r.mu.Unlock()
	switch {
	case t.done:
		return ErrTxnDone
	case t.killed:
		return ErrEarlyAbort
	case t.r.crashed:
		return ErrCrashed
	default:
		return nil
	}
}

// Exec runs one prepared statement. Early certification runs after
// write statements.
func (t *Txn) Exec(p *sql.Prepared, params ...any) (*sql.Result, error) {
	if err := t.checkAlive(); err != nil {
		return nil, err
	}
	sp := t.r.tracer.Load().StartSpan("replica.exec", t.span.Context())
	var res *sql.Result
	var err error
	t.r.withSlot(func() {
		if t.r.lat != nil {
			t.r.lat.Statement()
		}
		res, err = p.Exec(t.stx, t.r.engine(), params...)
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	for _, tab := range p.TableSet {
		t.touched[tab] = true
	}
	if !p.ReadOnly {
		if err := t.afterWrite(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecSQL parses and runs one ad-hoc statement.
func (t *Txn) ExecSQL(src string, params ...any) (*sql.Result, error) {
	if err := t.checkAlive(); err != nil {
		return nil, err
	}
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	sp := t.r.tracer.Load().StartSpan("replica.exec", t.span.Context())
	var res *sql.Result
	t.r.withSlot(func() {
		if t.r.lat != nil {
			t.r.lat.Statement()
		}
		res, err = sql.ExecStmt(t.stx, t.r.engine(), stmt, params...)
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	for _, tab := range sql.Tables(stmt) {
		t.touched[tab] = true
	}
	if !sql.IsReadOnly(stmt) {
		if err := t.afterWrite(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// afterWrite refreshes the partial writeset and, when enabled, checks
// it against pending refreshes (statement-side early certification).
// "Pending" covers both refreshes still queued in the certifier
// mailbox and those sitting in the reorder buffer awaiting their turn.
func (t *Txn) afterWrite() error {
	ws := t.stx.WriteSet()
	r := t.r
	r.mu.Lock()
	t.partial = ws
	killed := t.killed
	var sub RefreshSource
	if r.cfg.EarlyCert && !killed {
		for _, ref := range r.reorder {
			if ref.WS.ConflictsWith(ws) {
				killed = true
				t.killed = true
				break
			}
		}
		// The drainer's in-flight batch left the reorder buffer but is
		// not yet applied; each of its writesets must still be checked
		// individually. Members at or below this transaction's snapshot
		// are exempt: the parallel applier publishes versions
		// progressively, so such a member already committed before our
		// snapshot and cannot fail our certification — aborting on it
		// would be a spurious kill, not an early detection.
		if !killed {
			snap := t.stx.Snapshot()
			for i := range r.applying {
				if r.applying[i].Version > snap && r.applying[i].WS.ConflictsWith(ws) {
					killed = true
					t.killed = true
					break
				}
			}
		}
		sub = r.sub
	}
	r.mu.Unlock()
	if killed {
		t.abortInternal()
		return ErrEarlyAbort
	}
	if sub == nil {
		return nil
	}
	for _, pending := range sub.Pending() {
		if pending.WS.ConflictsWith(ws) {
			t.abortInternal()
			return ErrEarlyAbort
		}
	}
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.abortInternal()
}

func (t *Txn) abortInternal() {
	t.r.mu.Lock()
	if t.done {
		t.r.mu.Unlock()
		return
	}
	t.done = true
	delete(t.r.actives, t.id)
	t.r.mu.Unlock()
	t.stx.Abort()
	t.r.active.Add(-1)
	if t.timer != nil {
		t.timer.Stop()
	}
	if o := t.r.obs.Load(); o != nil {
		o.finish(t)
	}
	if t.span != nil {
		outcome := t.outcome
		if outcome == "" {
			outcome = "abort"
		}
		t.span.SetAttr("outcome", outcome)
		if t.commitVersion != 0 {
			t.span.SetAttr("version", strconv.FormatUint(t.commitVersion, 10))
		}
		t.span.End()
	}
}

// CommitResult describes a successful commit.
type CommitResult struct {
	// Version is the commit version for updates, or the snapshot
	// version for read-only transactions (what the client observed).
	Version uint64
	// ReadOnly reports whether the transaction was read-only.
	ReadOnly bool
	// WrittenTables lists the tables in the writeset (empty for
	// read-only) — the load balancer updates Vt from these.
	WrittenTables []string
	// TableVersions bounds, per touched table, the newest write this
	// transaction can have observed (written tables report the commit
	// version itself). The load balancer folds these into the session's
	// per-table floors — the fine-grained session bound that lets a
	// later transaction on a cold table start immediately while still
	// never regressing below anything this one saw.
	TableVersions map[string]uint64
}

// Commit finishes the transaction. Read-only transactions commit
// locally and immediately; update transactions are certified, then
// committed at their assigned version in global order, and — under
// eager — held until every replica has applied them.
func (t *Txn) Commit(eager bool) (CommitResult, error) {
	if err := t.checkAlive(); err != nil {
		if errors.Is(err, ErrEarlyAbort) {
			t.abortInternal()
		}
		return CommitResult{}, err
	}
	commitSpan := t.r.tracer.Load().StartSpan("replica.commit", t.span.Context())
	defer commitSpan.End()
	ws := t.stx.WriteSet()
	if ws.Empty() {
		commitSpan.SetAttr("read_only", "true")
		// Read-only: local commit, no certification (§IV).
		if t.timer != nil {
			t.timer.Start(metrics.StageCommit)
		}
		t.r.withSlot(func() {
			if t.r.lat != nil {
				t.r.lat.LocalCommit()
			}
		})
		snap := t.stx.Snapshot()
		tv := t.r.engine().TableVersionsAt(t.Touched(), snap)
		t.outcome, t.commitVersion, t.readOnly = "commit", snap, true
		t.abortInternal() // releases the storage txn; nothing to apply
		return CommitResult{Version: snap, ReadOnly: true, TableVersions: tv}, nil
	}

	// Certification round trip.
	if t.timer != nil {
		t.timer.Start(metrics.StageCertify)
	}
	if t.r.lat != nil {
		t.r.lat.RoundTrip()
	}
	dec, err := t.r.cert.Certify(t.r.cfg.ID, t.id, t.stx.Snapshot(), ws, commitSpan.Context())
	if err != nil {
		t.abortInternal()
		return CommitResult{}, err
	}
	if !dec.Commit {
		if o := t.r.obs.Load(); o != nil {
			o.certConflicts.Inc()
		}
		t.abortInternal()
		return CommitResult{}, ErrCertifyConflict
	}

	// Claim our version slot so the applier will not wait for a
	// refresh at dec.Version, then wait for all predecessors.
	if t.timer != nil {
		t.timer.Start(metrics.StageSync)
	}
	r := t.r
	syncSpan := r.tracer.Load().StartSpan("replica.sync_wait", commitSpan.Context())
	r.mu.Lock()
	r.committing[dec.Version] = true
	r.cond.Broadcast() // let the drainer re-evaluate its stop condition
	appliedAsRefresh := false
	for {
		if r.crashed {
			delete(r.committing, dec.Version)
			r.mu.Unlock()
			syncSpan.End()
			t.abortInternal()
			return CommitResult{}, ErrCrashed
		}
		// A resubscribe backfill replays certifier history, which
		// includes this replica's OWN commits: if the claim above lost
		// the race with the drainer, our writeset — identical content,
		// straight from the certifier — is already installed (or is
		// inside the in-flight batch). Committing it again would be a
		// double apply, so adopt the refresh as our commit instead.
		if r.engine().Version() >= dec.Version {
			appliedAsRefresh = true
			break
		}
		covered := len(r.applying) > 0 && r.applying[len(r.applying)-1].Version >= dec.Version
		if r.engine().Version() == dec.Version-1 && !covered {
			break // our turn: predecessors applied, our slot is free
		}
		r.cond.Wait()
	}
	r.mu.Unlock()
	syncSpan.End()

	// Local commit at the assigned version.
	if t.timer != nil {
		t.timer.Start(metrics.StageCommit)
	}
	if !appliedAsRefresh {
		var commitErr error
		r.withSlot(func() {
			if r.lat != nil {
				r.lat.LocalCommit()
			}
			commitErr = r.engine().ApplyWriteSet(ws, dec.Version)
		})
		if commitErr != nil {
			// The slot was claimed and predecessors applied; failure here
			// is a protocol bug, not a runtime condition.
			panic(fmt.Sprintf("replica %d: local commit at %d: %v", r.cfg.ID, dec.Version, commitErr))
		}
	}
	r.mu.Lock()
	delete(r.committing, dec.Version)
	dur := r.dur
	// Wake the drainer: refreshes may have queued up behind our slot.
	r.cond.Broadcast()
	r.mu.Unlock()
	if !appliedAsRefresh {
		// A writeset adopted as a refresh is logged by the drainer; one
		// we committed ourselves is ours to log. This run may race the
		// drainer's around it — sequencing is the backend's job.
		_ = dur.LogApplied([]*writeset.WriteSet{ws}, dec.Version)
	}
	if o := r.obs.Load(); o != nil {
		o.noteTables(ws.Tables(), dec.Version)
	}

	// Eager strong consistency: hold the acknowledgment until every
	// replica has applied the writeset (global commit delay). The
	// certifier collects per-replica commit notifications and then
	// notifies the origin — one more round trip on top of the slowest
	// replica's apply (§IV-D).
	if eager {
		if t.timer != nil {
			t.timer.Start(metrics.StageGlobal)
		}
		globalSpan := r.tracer.Load().StartSpan("replica.global_wait", commitSpan.Context())
		<-r.cert.GlobalCommitted(dec.Version)
		globalSpan.End()
		if r.lat != nil {
			r.lat.RoundTrip()
		}
	}

	tv := r.engine().TableVersionsAt(t.Touched(), t.stx.Snapshot())
	for _, tab := range ws.Tables() {
		tv[tab] = dec.Version
	}
	res := CommitResult{Version: dec.Version, WrittenTables: ws.Tables(), TableVersions: tv}
	t.outcome, t.commitVersion = "commit", dec.Version
	t.abortInternal() // storage txn state is no longer needed
	return res, nil
}

// Crash detaches the replica: the applier stops, active transactions
// fail, and no new transactions start. Durable state (the engine) is
// retained, matching the crash-recovery failure model.
func (r *Replica) Crash() {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.crashed = true
	r.applierGen++ // invalidate the running applier
	for _, tx := range r.actives {
		tx.killed = true
	}
	r.reorder = make(map[uint64]certifier.Refresh)
	r.committing = make(map[uint64]bool)
	r.arrived = make(map[uint64]time.Time)
	acks := r.acks
	r.cond.Broadcast()
	r.mu.Unlock()
	if acks != nil {
		acks.stop()
	}
	r.cert.Unsubscribe(r.cfg.ID)
}

// / Recover reattaches a crashed replica: it resubscribes, replays the
// certifier history it missed, and resumes applying new refreshes.
func (r *Replica) Recover() error {
	r.mu.Lock()
	if !r.crashed {
		r.mu.Unlock()
		return errors.New("replica: Recover on a live replica")
	}
	r.mu.Unlock()

	// Subscribe first so no refresh is missed, then backfill from
	// history; the reorder buffer deduplicates overlap by version.
	r.attach()
	engV := r.engine().Version()
	r.mu.Lock()
	// Crash discards applied-but-unlogged runs from the replica's
	// buffers; realign the durable log so it does not park every future
	// run behind versions that will never be logged again.
	r.dur.Realign(engV + 1)
	r.mu.Unlock()
	// History is paged (at most certifier.MaxHistoryBatch per call):
	// loop until an empty page, applying each page before fetching the
	// next so backfill memory stays bounded. Versions certified after
	// the subscription above arrive on the live stream.
	after := engV
	for first := true; ; first = false {
		missed := r.cert.History(after)
		if len(missed) == 0 {
			break
		}
		if first && missed[0].Version > engV+1 {
			// The certifier trimmed its history above our restore point:
			// versions in (engV, missed[0].Version) are gone and can never
			// be applied here. Serving anyway would be silent divergence —
			// fail loudly and stay crashed.
			r.Crash()
			return fmt.Errorf("replica %d: recovery needs history from version %d but the certifier's starts at %d (trimmed below our restore point)",
				r.cfg.ID, engV+1, missed[0].Version)
		}
		after = missed[len(missed)-1].Version
		r.mu.Lock()
		for _, ref := range missed {
			if ref.WS == nil { // skip marker, see applier
				ref.WS = &writeset.WriteSet{}
			}
			if ref.Version > r.engine().Version() {
				r.reorder[ref.Version] = ref
			}
			// Every replayed version was certified — and possibly
			// acknowledged — while this replica was down; raise the serve
			// floor so no transaction reads below it.
			if ref.Version > r.minServe {
				r.minServe = ref.Version
			}
		}
		r.applyReadyLocked()
		r.mu.Unlock()
	}
	return nil
}

// RecoverFrom reattaches a crashed replica around a replacement
// backend — the disk-restart path. The process died (the old backend
// was abandoned mid-write, kill -9 style), a new backend was recovered
// from its checkpoint + WAL suffix, and the replica resumes from the
// recovered Vlocal: the certifier backfills only the history suffix
// the durable state missed.
func (r *Replica) RecoverFrom(b storage.Backend) error {
	r.mu.Lock()
	if !r.crashed {
		r.mu.Unlock()
		return errors.New("replica: RecoverFrom on a live replica")
	}
	r.eng.Store(b.Engine())
	r.dur = b
	r.mu.Unlock()
	return r.Recover()
}

// Crashed reports whether the replica is currently detached.
func (r *Replica) Crashed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.crashed
}
