package replica

import (
	"fmt"
	"testing"

	"sconrep/internal/certifier"
	"sconrep/internal/storage"
	"sconrep/internal/writeset"
)

// benchBacklog is the refresh backlog each measured drain works
// through — the acceptance scenario for the group-apply hot path.
const benchBacklog = 64

func benchEngine(b *testing.B) *storage.Engine {
	b.Helper()
	eng := storage.NewEngine()
	err := eng.CreateTable(&storage.Schema{
		Table:   "kv",
		Columns: []storage.Column{{Name: "k", Type: storage.TInt}, {Name: "v", Type: storage.TString}},
		Key:     []string{"k"},
	})
	if err != nil {
		b.Fatal(err)
	}
	tx := eng.Begin()
	for k := int64(0); k < 10; k++ {
		if err := tx.Insert("kv", []any{k, "init"}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tx.CommitLocal(); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkRefreshApply drains a 64-refresh backlog per iteration:
//
//   - batched: the serial group-apply configuration (ApplyWorkers=1) —
//     the PR 4 baseline the parallel applier is measured against;
//   - parallel: the conflict-aware worker pool on a non-conflicting
//     backlog (64 distinct keys), the applier's best case;
//   - conflicting: the pool on a fully-conflicting backlog (one hot
//     key) — the conflict graph is a pure chain, so this exercises the
//     serial fallback and must not regress against batched;
//   - perwriteset: the seed's pre-batching path (one engine critical
//     section, one broadcast, and one ack goroutine per refresh).
//
// No latency model is attached: the numbers are the pure hot-path
// cost, which is what the batching and parallel-apply work set out to
// cut.
func BenchmarkRefreshApply(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  Config
		per  bool
		key  func(i int) int64
	}{
		{"batched", Config{ID: 0, ApplyWorkers: 1}, false, func(i int) int64 { return int64(i % 10) }},
		{"parallel", Config{ID: 0, ApplyWorkers: 4, MaxApplyBatch: benchBacklog}, false, func(i int) int64 { return int64(i) }},
		{"conflicting", Config{ID: 0, ApplyWorkers: 4, MaxApplyBatch: benchBacklog}, false, func(i int) int64 { return 0 }},
		{"perwriteset", Config{ID: 0, ApplyWorkers: 1}, true, func(i int) int64 { return int64(i % 10) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := benchEngine(b)
			fake := newFakeCert()
			r := New(mode.cfg, eng, fake)
			defer r.Crash()
			r.mu.Lock()
			r.benchPerWriteset = mode.per
			r.mu.Unlock()

			// Writesets are prebuilt and reused; only the Refresh envelope
			// (version, txn id) changes per iteration. The engine copies
			// rows on apply, so sharing is safe.
			wss := make([]*writeset.WriteSet, benchBacklog)
			schema, ok := eng.Schema("kv")
			if !ok {
				b.Fatal("kv schema missing")
			}
			for i := range wss {
				row := []any{mode.key(i), fmt.Sprintf("w%d", i)}
				key, err := schema.KeyOf(row)
				if err != nil {
					b.Fatal(err)
				}
				wss[i] = &writeset.WriteSet{Items: []writeset.Item{
					{Table: "kv", Key: key, Op: writeset.OpUpdate, Row: row},
				}}
			}
			refs := make([]certifier.Refresh, benchBacklog)

			b.ReportAllocs()
			b.ResetTimer()
			v := eng.Version()
			for i := 0; i < b.N; i++ {
				for j := range refs {
					v++
					refs[j] = certifier.Refresh{TxnID: v, Version: v, Origin: -1, WS: wss[j]}
				}
				fake.queue.push(refs...)
				r.mu.Lock()
				for eng.Version() < v {
					r.cond.Wait()
				}
				r.mu.Unlock()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*benchBacklog/b.Elapsed().Seconds(), "refreshes/s")
		})
	}
}
